package core

import (
	"math"
	"math/bits"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

func randomGraph(rng *rand.Rand, n, extraEdges int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i < extraEdges; i++ {
		b.AddEdge(int32(rng.Intn(n)), int32(rng.Intn(n)))
	}
	return b.Build()
}

// einOfMask counts edges inside the subset encoded by mask.
func einOfMask(g *graph.Graph, mask uint) int64 {
	var m int64
	g.Edges(func(u, v int32) bool {
		if mask&(1<<uint(u)) != 0 && mask&(1<<uint(v)) != 0 {
			m++
		}
		return true
	})
	return m
}

// TestLMatchesLatticeDefinition brute-forces the directed Laplacian on
// the subset lattice Γ↑ and compares it with the closed form. In Γ↑ every
// subset S receives an edge from each S\{x}, and indeg(T) = |T| (the
// empty set acts as the predecessor of singletons, with ϕ(∅) = 0 — the
// convention under which the paper's closed form is exact).
func TestLMatchesLatticeDefinition(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(8) // up to 9 nodes -> 511 subsets
		g := randomGraph(rng, n, 3*n)
		c := 0.05 + 0.9*rng.Float64()
		for mask := uint(1); mask < 1<<uint(n); mask++ {
			s := bits.OnesCount(mask)
			m := einOfMask(g, mask)
			closed := L(s, m, c)
			if s == 1 {
				if closed != 1 {
					return false
				}
				continue
			}
			// Brute-force: ϕ(S) − Σ_x ϕ(S\{x}) / √(|S|·|S\{x}|).
			sum := 0.0
			for x := 0; x < n; x++ {
				if mask&(1<<uint(x)) == 0 {
					continue
				}
				sub := mask &^ (1 << uint(x))
				sum += Phi(s-1, einOfMask(g, sub), c)
			}
			def := Phi(s, m, c) - sum/math.Sqrt(float64(s)*float64(s-1))
			if math.Abs(def-closed) > 1e-9*math.Max(1, math.Abs(def)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestLBoundaryCases(t *testing.T) {
	if L(0, 0, 0.5) != 0 {
		t.Fatal("L(∅) != 0")
	}
	if L(1, 0, 0.5) != 1 {
		t.Fatal("L({v}) != 1")
	}
	// s=2 with an internal edge: 2 − √2 + 2c.
	got := L(2, 1, 0.5)
	want := 2 - math.Sqrt2 + 1
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("L(2,1,0.5)=%v, want %v", got, want)
	}
}

// TestIndependentVsCompletePhi reproduces Example 2 of the paper:
// ϕ of an independent set of size k is k, and ϕ of K_k is ck² + (1−c)k.
func TestIndependentVsCompletePhi(t *testing.T) {
	c := 0.7
	for k := 1; k <= 20; k++ {
		if got := Phi(k, 0, c); got != float64(k) {
			t.Fatalf("independent ϕ(%d)=%v", k, got)
		}
		m := int64(k * (k - 1) / 2)
		want := c*float64(k)*float64(k) + (1-c)*float64(k)
		if got := Phi(k, m, c); math.Abs(got-want) > 1e-9 {
			t.Fatalf("complete ϕ(%d)=%v, want %v", k, got, want)
		}
	}
}

// TestGainsMatchDifference verifies the incremental gain helpers equal
// explicit L differences.
func TestGainsMatchDifference(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := 2 + rng.Intn(100)
		m := int64(rng.Intn(s * (s - 1) / 2))
		d := int32(rng.Intn(s))
		c := rng.Float64() * 0.99
		ga := gainAdd(s, m, d, c)
		if math.Abs(ga-(L(s+1, m+int64(d), c)-L(s, m, c))) > 1e-12 {
			return false
		}
		if int64(d) <= m {
			gr := gainRemove(s, m, d, c)
			if math.Abs(gr-(L(s-1, m-int64(d), c)-L(s, m, c))) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestMonotonicityInEin: for fixed s ≥ 2, L increases with m, so the
// greedy rule "add max-d frontier node / remove min-d member" selects the
// optimal single move.
func TestMonotonicityInEin(t *testing.T) {
	for _, c := range []float64{0.1, 0.5, 0.9} {
		for s := 2; s <= 50; s++ {
			maxM := int64(s * (s - 1) / 2)
			for m := int64(1); m <= maxM; m++ {
				if L(s, m, c) <= L(s, m-1, c) {
					t.Fatalf("L not increasing in m at s=%d m=%d c=%g", s, m, c)
				}
			}
		}
	}
}

// TestCliqueBeatsIndependent: with c large enough, L of a clique exceeds
// L of an independent set of equal size (the motivation of Example 2).
func TestCliqueBeatsIndependent(t *testing.T) {
	c := 0.5
	for k := 2; k <= 30; k++ {
		clique := L(k, int64(k*(k-1)/2), c)
		indep := L(k, 0, c)
		if clique <= indep {
			t.Fatalf("k=%d: clique L=%v <= independent L=%v", k, clique, indep)
		}
	}
}
