package graph

import "testing"

// path builds the path graph 0-1-2-...-(n-1).
func pathGraph(n int) *Graph {
	b := NewBuilder(n)
	for i := int32(0); i < int32(n-1); i++ {
		b.AddEdge(i, i+1)
	}
	return b.Build()
}

func TestDeltaGrowToPureGrowth(t *testing.T) {
	g := pathGraph(4)
	d := NewDelta(g)
	d.GrowTo(7)
	if d.N() != 7 {
		t.Fatalf("N() = %d, want 7", d.N())
	}
	ng := d.Apply()
	if ng == g {
		t.Fatal("pure growth returned the base graph")
	}
	if ng.N() != 7 || ng.M() != g.M() {
		t.Fatalf("grown graph n=%d m=%d, want n=7 m=%d", ng.N(), ng.M(), g.M())
	}
	for v := int32(4); v < 7; v++ {
		if ng.Degree(v) != 0 {
			t.Errorf("grown node %d has degree %d, want isolated", v, ng.Degree(v))
		}
	}
	// The base graph's adjacency is untouched.
	if g.N() != 4 {
		t.Error("base graph mutated by growth")
	}
}

func TestDeltaGrowToWithEdges(t *testing.T) {
	g := pathGraph(4)
	d := NewDelta(g)
	// Out of range until GrowTo raises the bound.
	if err := d.AddEdge(0, 6); err == nil {
		t.Fatal("AddEdge past the bound accepted before GrowTo")
	}
	d.GrowTo(8)
	if err := d.AddEdge(0, 6); err != nil {
		t.Fatalf("AddEdge after GrowTo: %v", err)
	}
	if err := d.AddEdge(6, 7); err != nil {
		t.Fatalf("AddEdge between two grown nodes: %v", err)
	}
	if err := d.RemoveEdge(1, 2); err != nil {
		t.Fatalf("RemoveEdge on base nodes: %v", err)
	}
	// Removing a never-existing edge at a grown node is a no-op.
	if err := d.RemoveEdge(5, 0); err != nil {
		t.Fatalf("RemoveEdge naming a grown node: %v", err)
	}
	ng := d.Apply()
	if ng.N() != 8 {
		t.Fatalf("n = %d, want 8", ng.N())
	}
	wantEdges := []struct {
		u, v int32
		want bool
	}{
		{0, 1, true}, {1, 2, false}, {2, 3, true},
		{0, 6, true}, {6, 7, true}, {0, 5, false},
	}
	for _, e := range wantEdges {
		if got := ng.HasEdge(e.u, e.v); got != e.want {
			t.Errorf("HasEdge(%d, %d) = %v, want %v", e.u, e.v, got, e.want)
		}
	}
	if ng.M() != 4 {
		t.Errorf("m = %d, want 4", ng.M())
	}
	// Adjacency lists stay sorted (CSR invariant).
	for v := int32(0); int(v) < ng.N(); v++ {
		adj := ng.Neighbors(v)
		for i := 1; i < len(adj); i++ {
			if adj[i-1] >= adj[i] {
				t.Fatalf("node %d adjacency unsorted: %v", v, adj)
			}
		}
	}
}

func TestDeltaGrowToShrinkIsNoop(t *testing.T) {
	g := pathGraph(5)
	d := NewDelta(g)
	d.GrowTo(3) // shrinking is not supported
	if d.N() != 5 {
		t.Fatalf("N() = %d after shrink attempt, want 5", d.N())
	}
	if got := d.Apply(); got != g {
		t.Error("no-op delta with ignored shrink did not return the base graph")
	}
}

// TestDeltaGrowCancelledOpsStillGrow covers growth requested by ops that
// cancel each other: the node set still extends (ids were named), even
// though no edge changes.
func TestDeltaGrowCancelledOpsStillGrow(t *testing.T) {
	g := pathGraph(3)
	d := NewDelta(g)
	d.GrowTo(6)
	if err := d.AddEdge(0, 5); err != nil {
		t.Fatal(err)
	}
	if err := d.RemoveEdge(0, 5); err != nil {
		t.Fatal(err)
	}
	ng := d.Apply()
	if ng.N() != 6 || ng.M() != g.M() || ng.HasEdge(0, 5) {
		t.Errorf("n=%d m=%d HasEdge(0,5)=%v, want 6 nodes, unchanged edges", ng.N(), ng.M(), ng.HasEdge(0, 5))
	}
}
