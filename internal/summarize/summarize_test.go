package summarize

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/cover"
	"repro/internal/graph"
)

func clique(b *graph.Builder, members []int32) {
	for i := 0; i < len(members); i++ {
		for j := i + 1; j < len(members); j++ {
			b.AddEdge(members[i], members[j])
		}
	}
}

func com(vs ...int32) cover.Community { return cover.NewCommunity(vs) }

func TestCliqueCompressesToOneEntry(t *testing.T) {
	b := graph.NewBuilder(8)
	members := []int32{0, 1, 2, 3, 4, 5, 6, 7}
	clique(b, members)
	g := b.Build()
	s, err := Build(g, cover.NewCover([]cover.Community{com(members...)}))
	if err != nil {
		t.Fatal(err)
	}
	if !s.SelfDense[0] || len(s.Additions) != 0 || len(s.Exceptions) != 0 {
		t.Fatalf("clique summary: dense=%v add=%d exc=%d", s.SelfDense[0], len(s.Additions), len(s.Exceptions))
	}
	if got := s.Cost(); got != 1 {
		t.Fatalf("cost=%d, want 1 (one dense supernode)", got)
	}
	if g.M() != 28 {
		t.Fatalf("m=%d", g.M())
	}
}

func TestTwoCliquesWithBridge(t *testing.T) {
	b := graph.NewBuilder(12)
	a := []int32{0, 1, 2, 3, 4, 5}
	c := []int32{6, 7, 8, 9, 10, 11}
	clique(b, a)
	clique(b, c)
	b.AddEdge(5, 6)
	g := b.Build()
	s, err := Build(g, cover.NewCover([]cover.Community{com(a...), com(c...)}))
	if err != nil {
		t.Fatal(err)
	}
	// Two dense supernodes + the bridge as an addition.
	if !s.SelfDense[0] || !s.SelfDense[1] {
		t.Fatalf("self dense: %v", s.SelfDense)
	}
	if len(s.Superedges) != 0 || len(s.Additions) != 1 {
		t.Fatalf("superedges=%d additions=%v", len(s.Superedges), s.Additions)
	}
	if s.Cost() != 3 {
		t.Fatalf("cost=%d, want 3 vs %d edges", s.Cost(), g.M())
	}
}

func TestDenseBipartitePairBecomesSuperedge(t *testing.T) {
	// Complete bipartite K_{4,4} between two communities, no internal
	// edges: the cross pair should be a superedge with no exceptions.
	b := graph.NewBuilder(8)
	for i := int32(0); i < 4; i++ {
		for j := int32(4); j < 8; j++ {
			b.AddEdge(i, j)
		}
	}
	g := b.Build()
	s, err := Build(g, cover.NewCover([]cover.Community{com(0, 1, 2, 3), com(4, 5, 6, 7)}))
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Superedges) != 1 || len(s.Exceptions) != 0 || len(s.Additions) != 0 {
		t.Fatalf("summary: %+v", s)
	}
	if s.SelfDense[0] || s.SelfDense[1] {
		t.Fatal("edgeless interiors must not be dense")
	}
}

func TestOverlapPrimaryAssignment(t *testing.T) {
	// Node 4 is in both communities but has all its edges in community
	// B; its primary supernode must be B's.
	b := graph.NewBuilder(9)
	clique(b, []int32{0, 1, 2, 3})
	clique(b, []int32{4, 5, 6, 7, 8})
	g := b.Build()
	cv := cover.NewCover([]cover.Community{
		com(0, 1, 2, 3, 4), // A (4 has no edge into A)
		com(4, 5, 6, 7, 8), // B
	})
	s, err := Build(g, cv)
	if err != nil {
		t.Fatal(err)
	}
	if s.Primary[4] != s.Primary[5] {
		t.Fatalf("node 4 assigned to supernode %d, want B's (%d)", s.Primary[4], s.Primary[5])
	}
}

func TestUncoveredNodesBecomeSingletons(t *testing.T) {
	b := graph.NewBuilder(5)
	clique(b, []int32{0, 1, 2})
	b.AddEdge(3, 4)
	g := b.Build()
	s, err := Build(g, cover.NewCover([]cover.Community{com(0, 1, 2)}))
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Supernodes) != 3 { // community + two singletons
		t.Fatalf("supernodes=%d, want 3", len(s.Supernodes))
	}
	g2 := Reconstruct(s)
	if !sameGraph(g, g2) {
		t.Fatal("reconstruction mismatch")
	}
}

func TestBuildRejectsOutOfRange(t *testing.T) {
	g := graph.NewBuilder(3).Build()
	if _, err := Build(g, cover.NewCover([]cover.Community{com(5)})); err == nil {
		t.Fatal("out-of-range community accepted")
	}
}

func sameGraph(a, b *graph.Graph) bool {
	if a.N() != b.N() || a.M() != b.M() {
		return false
	}
	same := true
	a.Edges(func(u, v int32) bool {
		if !b.HasEdge(u, v) {
			same = false
			return false
		}
		return true
	})
	return same
}

// TestReconstructionLossless: for random graphs and random (overlapping)
// covers, Reconstruct(Build(g)) == g exactly.
func TestReconstructionLossless(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(40)
		b := graph.NewBuilder(n)
		for i := 0; i < 4*n; i++ {
			b.AddEdge(int32(rng.Intn(n)), int32(rng.Intn(n)))
		}
		g := b.Build()
		// Random cover: a few random (overlapping, partial) communities.
		k := rng.Intn(6)
		cs := make([]cover.Community, 0, k)
		for i := 0; i < k; i++ {
			var vals []int32
			for j := 0; j < 2+rng.Intn(n); j++ {
				vals = append(vals, int32(rng.Intn(n)))
			}
			cs = append(cs, cover.NewCommunity(vals))
		}
		s, err := Build(g, cover.NewCover(cs))
		if err != nil {
			return false
		}
		return sameGraph(g, Reconstruct(s))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestCompressionOnPlantedStructure: on a graph of dense planted
// communities the summary must be substantially smaller than the edge
// list.
func TestCompressionOnPlantedStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	const k, size = 8, 20
	b := graph.NewBuilder(k * size)
	var cs []cover.Community
	for c := 0; c < k; c++ {
		members := make([]int32, size)
		for i := range members {
			members[i] = int32(c*size + i)
		}
		// Dense interior (90%).
		for i := 0; i < size; i++ {
			for j := i + 1; j < size; j++ {
				if rng.Float64() < 0.9 {
					b.AddEdge(members[i], members[j])
				}
			}
		}
		cs = append(cs, cover.NewCommunity(members))
	}
	// Sparse noise between communities.
	for i := 0; i < 40; i++ {
		b.AddEdge(int32(rng.Intn(k*size)), int32(rng.Intn(k*size)))
	}
	g := b.Build()
	s, err := Build(g, cover.NewCover(cs))
	if err != nil {
		t.Fatal(err)
	}
	if !sameGraph(g, Reconstruct(s)) {
		t.Fatal("reconstruction mismatch")
	}
	ratio := float64(s.Cost()) / float64(g.M())
	if ratio > 0.4 {
		t.Fatalf("compression ratio %.2f, want < 0.4 (cost=%d, m=%d)", ratio, s.Cost(), g.M())
	}
}
