package repro_test

// One testing.B benchmark per table/figure of the paper's evaluation.
// Each bench drives the same harness code paths as cmd/ocabench on a
// reduced workload, so `go test -bench=.` exercises every experiment
// end to end; the full paper-scale sweeps are run with
// `go run ./cmd/ocabench -full all`.

import (
	"testing"
	"time"

	"repro/internal/bench"
)

// benchConfig returns a workload sized for testing.B iteration.
func benchConfig(seed int64) bench.Config {
	return bench.Config{
		Seed:      seed,
		Workers:   1,
		Fig2Mus:   []float64{0.2, 0.5},
		Fig2N:     400,
		Fig3Sizes: []int{100, 300},
		Fig5Sizes: []int{400, 800},
		Fig6Ks:    []int{30, 60},
		Fig6N:     600,
		WikiScale: 11,
		TimeLimit: time.Minute,
	}
}

// BenchmarkTable1 regenerates Table I (dataset inventory) at the quick
// scale: LFR and daisy at 10^4 nodes, R-MAT at 2^15.
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunTable1(bench.Config{Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig2ThetaVsMu regenerates Figure 2: Θ against the mixing
// parameter for OCA, LFK and CFinder on LFR benchmarks.
func BenchmarkFig2ThetaVsMu(b *testing.B) {
	var lastTheta float64
	for i := 0; i < b.N; i++ {
		fig, err := bench.RunFig2(benchConfig(int64(i)))
		if err != nil {
			b.Fatal(err)
		}
		lastTheta = fig.Series[0].Y[0] // OCA at the lowest µ
	}
	b.ReportMetric(lastTheta, "theta")
}

// BenchmarkFig3DaisyTheta regenerates Figure 3: Θ of the daisy community
// structure across tree sizes.
func BenchmarkFig3DaisyTheta(b *testing.B) {
	var lastTheta float64
	for i := 0; i < b.N; i++ {
		fig, err := bench.RunFig3(benchConfig(int64(i)))
		if err != nil {
			b.Fatal(err)
		}
		lastTheta = fig.Series[0].Y[0]
	}
	b.ReportMetric(lastTheta, "theta")
}

// BenchmarkFig4DaisyComposition regenerates Figure 4's qualitative
// community composition report on a single daisy.
func BenchmarkFig4DaisyComposition(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunFig4(benchConfig(int64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig5ScalabilityTimes regenerates Figure 5: execution time
// against graph size, including the faithful (quadratic) CFinder.
func BenchmarkFig5ScalabilityTimes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunFig5(benchConfig(int64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig6CommunitySizeTimes regenerates Figure 6: execution time
// against community size for OCA and LFK.
func BenchmarkFig6CommunitySizeTimes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunFig6(benchConfig(int64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWikipedia regenerates the Section V.B Wikipedia run on the
// synthetic substitute, reporting throughput.
func BenchmarkWikipedia(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.RunWiki(benchConfig(int64(i)))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.EdgesPerSec, "edges/s")
	}
}

// BenchmarkScaleExtension runs the scalability extension (OCA alone on a
// growing Wikipedia-like graph) at a reduced scale.
func BenchmarkScaleExtension(b *testing.B) {
	cfg := benchConfig(1)
	cfg.ScaleScales = []int{11}
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunScale(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
