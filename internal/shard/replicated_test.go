package shard

import (
	"context"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/refresh"
)

// fakeBackend is a scriptable Backend for replica-set routing tests:
// every signal the selection logic consumes (generation, view error,
// status error, queue depth, draining) is settable.
type fakeBackend struct {
	shardID int

	mu          sync.Mutex
	gen         uint64
	viewErr     error
	statusErr   string
	pending     int
	draining    bool
	breakerOpen bool
	flushGen    uint64
	flushErr    error
	applies     int
	flushes     int
	closed      bool
}

func (f *fakeBackend) set(fn func(*fakeBackend)) {
	f.mu.Lock()
	defer f.mu.Unlock()
	fn(f)
}

func (f *fakeBackend) Lookup(g int32) (int32, bool) { return g, true }
func (f *fakeBackend) EnsureLocal(g int32) int32    { return g }

func (f *fakeBackend) Apply(_ context.Context, add, remove [][2]int32) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.applies++
	return nil
}

func (f *fakeBackend) View() View {
	f.mu.Lock()
	defer f.mu.Unlock()
	return RemoteView(f.shardID, &refresh.Snapshot{Gen: f.gen}, nil, f.viewErr)
}

func (f *fakeBackend) Flush(ctx context.Context) (uint64, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.flushes++
	if f.flushErr != nil {
		return 0, f.flushErr
	}
	if f.flushGen > f.gen {
		f.gen = f.flushGen
	}
	return f.gen, nil
}

func (f *fakeBackend) Status() WorkerStatus {
	f.mu.Lock()
	defer f.mu.Unlock()
	return WorkerStatus{
		Shard:  f.shardID,
		Status: refresh.Status{Gen: f.gen, Pending: f.pending},
		Err:    f.statusErr,
	}
}

func (f *fakeBackend) Draining() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.draining
}

func (f *fakeBackend) BreakerOpen() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.breakerOpen
}

func (f *fakeBackend) Close() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.closed = true
}

func newTestSet(t *testing.T, gens []uint64, cfg ReplicaSetConfig) (*ReplicaSet, []*fakeBackend) {
	t.Helper()
	fakes := make([]*fakeBackend, len(gens))
	for i, g := range gens {
		fakes[i] = &fakeBackend{shardID: 0, gen: g}
	}
	reps := make([]Backend, 0, len(fakes)-1)
	for _, f := range fakes[1:] {
		reps = append(reps, f)
	}
	rs := NewReplicaSet(fakes[0], reps, cfg)
	t.Cleanup(rs.Close)
	return rs, fakes
}

// instantRead is a do callback that answers immediately from the
// member's scripted generation.
func instantRead(_ context.Context, m Backend, _ int) (uint64, error) {
	v := m.View()
	if v.Err != nil {
		return 0, v.Err
	}
	return v.Snap.Gen, nil
}

// TestReplicaSetRouting is the table-driven failure-mode matrix for
// read selection: which member a read lands on (or that it fails) for
// each combination of lag, floor, load, errors and draining.
func TestReplicaSetRouting(t *testing.T) {
	cases := []struct {
		name string
		gens []uint64 // member generations; [0] is the primary
		prep func(rs *ReplicaSet, fakes []*fakeBackend)

		wantMember int
		wantErr    string // substring; empty means success
	}{
		{
			name: "least loaded replica wins",
			gens: []uint64{5, 5, 5},
			prep: func(rs *ReplicaSet, _ []*fakeBackend) {
				rs.load[0].inflight.Store(4)
				rs.load[1].inflight.Store(1)
				// member 2 idle
			},
			wantMember: 2,
		},
		{
			name:       "primary wins ties",
			gens:       []uint64{5, 5},
			wantMember: 0,
		},
		{
			name: "lagging replica excluded by flush floor",
			gens: []uint64{5, 3},
			prep: func(rs *ReplicaSet, fakes []*fakeBackend) {
				fakes[0].set(func(f *fakeBackend) { f.flushGen = 5 })
				if _, err := rs.Flush(context.Background()); err != nil {
					panic(err)
				}
				// The lagging replica would otherwise win on load.
				rs.load[0].inflight.Store(10)
			},
			wantMember: 0,
		},
		{
			name: "caught-up replica rejoins selection",
			gens: []uint64{5, 5},
			prep: func(rs *ReplicaSet, fakes []*fakeBackend) {
				fakes[0].set(func(f *fakeBackend) { f.flushGen = 5 })
				if _, err := rs.Flush(context.Background()); err != nil {
					panic(err)
				}
				rs.load[0].inflight.Store(10)
			},
			wantMember: 1,
		},
		{
			name: "erroring replica excluded",
			gens: []uint64{5, 5},
			prep: func(rs *ReplicaSet, fakes []*fakeBackend) {
				fakes[1].set(func(f *fakeBackend) { f.viewErr = errors.New("mirror sync failed") })
				rs.load[0].inflight.Store(10)
			},
			wantMember: 0,
		},
		{
			name: "draining replica excluded",
			gens: []uint64{5, 5},
			prep: func(rs *ReplicaSet, fakes []*fakeBackend) {
				fakes[1].set(func(f *fakeBackend) { f.draining = true })
				rs.load[0].inflight.Store(10)
			},
			wantMember: 0,
		},
		{
			// A member whose circuit breaker is open is excluded before any
			// RPC is attempted — the set never pays a doomed timeout even
			// though the member's mirror still looks healthy.
			name: "breaker-open replica excluded",
			gens: []uint64{5, 5},
			prep: func(rs *ReplicaSet, fakes []*fakeBackend) {
				fakes[1].set(func(f *fakeBackend) { f.breakerOpen = true })
				rs.load[0].inflight.Store(10)
			},
			wantMember: 0,
		},
		{
			name: "breaker-open primary leaves replica serving reads",
			gens: []uint64{5, 5},
			prep: func(_ *ReplicaSet, fakes []*fakeBackend) {
				fakes[0].set(func(f *fakeBackend) { f.breakerOpen = true })
			},
			wantMember: 1,
		},
		{
			name: "dead primary leaves replica serving reads",
			gens: []uint64{5, 4},
			prep: func(_ *ReplicaSet, fakes []*fakeBackend) {
				fakes[0].set(func(f *fakeBackend) {
					f.viewErr = errors.New("connection refused")
					f.statusErr = "connection refused"
				})
			},
			wantMember: 1,
		},
		{
			name: "no member at floor fails explicitly",
			gens: []uint64{5, 4},
			prep: func(rs *ReplicaSet, fakes []*fakeBackend) {
				fakes[0].set(func(f *fakeBackend) { f.flushGen = 7 })
				if _, err := rs.Flush(context.Background()); err != nil {
					panic(err)
				}
				// Primary regresses below the flushed floor (e.g. dies and
				// its stale mirror is all that's left).
				fakes[0].set(func(f *fakeBackend) { f.gen = 5; f.viewErr = errors.New("down") })
			},
			// The surviving member is tried optimistically (its server could
			// be ahead of its mirror) but its reply is below the floor and is
			// rejected — no silent regression, an explicit unavailability.
			wantErr: "behind floor 7",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rs, fakes := newTestSet(t, tc.gens, ReplicaSetConfig{HedgeFraction: -1})
			if tc.prep != nil {
				tc.prep(rs, fakes)
			}
			rr, err := rs.Read(context.Background(), instantRead)
			if tc.wantErr != "" {
				if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("Read err = %v, want substring %q", err, tc.wantErr)
				}
				if !errors.Is(err, ErrUnavailable) {
					t.Fatalf("Read err = %v, want ErrUnavailable", err)
				}
				return
			}
			if err != nil {
				t.Fatalf("Read: %v", err)
			}
			if rr.Member != tc.wantMember {
				t.Fatalf("Read served by member %d, want %d", rr.Member, tc.wantMember)
			}
		})
	}
}

func TestReplicaSetMonotoneReads(t *testing.T) {
	rs, fakes := newTestSet(t, []uint64{7, 5}, ReplicaSetConfig{HedgeFraction: -1})

	// First read serves the freshest member and ratchets the floor.
	if rr, err := rs.Read(context.Background(), instantRead); err != nil || rr.Member != 0 {
		t.Fatalf("Read = member %d, %v; want primary", rr.Member, err)
	}
	if got := rs.floor(); got != 7 {
		t.Fatalf("floor after serving gen 7 = %d, want 7", got)
	}

	// The gen-7 member dies; the surviving gen-5 member must NOT serve —
	// a reply may never go backwards for this router's clients.
	fakes[0].set(func(f *fakeBackend) { f.viewErr = errors.New("down") })
	if _, err := rs.Read(context.Background(), instantRead); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("Read after regression = %v, want ErrUnavailable", err)
	}
	if v := rs.View(); v.Err == nil {
		t.Fatalf("View below floor must carry an error, got generation %d with nil error", v.Snap.Gen)
	}

	// A reply claiming a generation below the floor (raced snapshot
	// swap) is rejected, not returned.
	fakes[0].set(func(f *fakeBackend) { f.viewErr = nil })
	_, err := rs.Read(context.Background(), func(_ context.Context, _ Backend, _ int) (uint64, error) {
		return 3, nil // below the served floor of 7
	})
	if !errors.Is(err, ErrUnavailable) {
		t.Fatalf("stale reply error = %v, want ErrUnavailable", err)
	}
	if got := rs.stale.Load(); got == 0 {
		t.Fatal("stale-reject counter did not move")
	}
}

func TestReplicaSetFailoverOnError(t *testing.T) {
	rs, _ := newTestSet(t, []uint64{5, 5}, ReplicaSetConfig{HedgeFraction: -1})
	rs.load[0].inflight.Store(10) // make the failing replica the first choice

	calls := 0
	rr, err := rs.Read(context.Background(), func(_ context.Context, _ Backend, idx int) (uint64, error) {
		calls++
		if idx == 1 {
			return 0, errors.New("connection reset")
		}
		return 5, nil
	})
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if rr.Member != 0 || calls != 2 {
		t.Fatalf("Read = member %d after %d calls, want member 0 after 2", rr.Member, calls)
	}
	if got := rs.failovers.Load(); got != 1 {
		t.Fatalf("failovers = %d, want 1", got)
	}
	if rr.Hedged {
		t.Fatal("error failover must not count as a hedge")
	}
}

func TestReplicaSetHedgeOnStall(t *testing.T) {
	// HedgeFraction 1 removes the budget from the equation; the tiny
	// HedgeDelayMax makes the backup fire well before the stall ends.
	rs, _ := newTestSet(t, []uint64{5, 5}, ReplicaSetConfig{
		HedgeFraction: 1,
		HedgeDelayMin: time.Millisecond,
		HedgeDelayMax: 5 * time.Millisecond,
	})
	rs.load[1].inflight.Store(1) // deterministic order: primary first, replica hedge

	release := make(chan struct{})
	defer close(release)
	rr, err := rs.Read(context.Background(), func(ctx context.Context, _ Backend, idx int) (uint64, error) {
		if idx == 0 { // first choice stalls
			select {
			case <-release:
			case <-ctx.Done():
			}
			return 5, nil
		}
		return 5, nil
	})
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if !rr.Hedged || !rr.HedgeWon || rr.Member != 1 {
		t.Fatalf("ReadResult = %+v, want hedged win by member 1", rr)
	}
	if h, w := rs.hedges.Load(), rs.hedgeWins.Load(); h != 1 || w != 1 {
		t.Fatalf("hedges/wins = %d/%d, want 1/1", h, w)
	}
}

func TestReplicaSetHedgeBudget(t *testing.T) {
	// With the default 5% budget, the very first read may not hedge
	// (1 > 0.05*1): the stall must be ridden out.
	rs, _ := newTestSet(t, []uint64{5, 5}, ReplicaSetConfig{
		HedgeDelayMin: time.Millisecond,
		HedgeDelayMax: 2 * time.Millisecond,
	})
	stalled := make(chan struct{})
	go func() { time.Sleep(30 * time.Millisecond); close(stalled) }()
	rr, err := rs.Read(context.Background(), func(ctx context.Context, _ Backend, idx int) (uint64, error) {
		if idx == 0 {
			<-stalled
		}
		return 5, nil
	})
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if rr.Hedged || rs.hedges.Load() != 0 {
		t.Fatalf("budget-starved read hedged anyway: %+v, hedges=%d", rr, rs.hedges.Load())
	}

	// Once enough reads accumulate, the same stall does hedge. The
	// first stall's EWMA may have reordered the members, so stall
	// whichever member the first attempt lands on.
	rs.reads.Add(1000)
	stalled2 := make(chan struct{})
	defer close(stalled2)
	var first atomic.Bool
	first.Store(true)
	rr, err = rs.Read(context.Background(), func(ctx context.Context, _ Backend, _ int) (uint64, error) {
		if first.CompareAndSwap(true, false) {
			select {
			case <-stalled2:
			case <-ctx.Done():
			}
		}
		return 5, nil
	})
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if !rr.Hedged || !rr.HedgeWon {
		t.Fatalf("budgeted read did not hedge: %+v", rr)
	}
}

func TestReplicaSetWritesGoToPrimary(t *testing.T) {
	rs, fakes := newTestSet(t, []uint64{3, 3, 3}, ReplicaSetConfig{})
	fakes[0].set(func(f *fakeBackend) { f.flushGen = 4 })

	if err := rs.Apply(context.Background(), [][2]int32{{0, 1}}, nil); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	gen, err := rs.Flush(context.Background())
	if err != nil || gen != 4 {
		t.Fatalf("Flush = %d, %v; want 4", gen, err)
	}
	for i, f := range fakes {
		f.mu.Lock()
		applies, flushes := f.applies, f.flushes
		f.mu.Unlock()
		wantA, wantF := 0, 0
		if i == 0 {
			wantA, wantF = 1, 1
		}
		if applies != wantA || flushes != wantF {
			t.Fatalf("member %d saw %d applies / %d flushes, want %d/%d", i, applies, flushes, wantA, wantF)
		}
	}
	if got := rs.floor(); got != 4 {
		t.Fatalf("floor after flush = %d, want 4", got)
	}

	// Dead primary: Status carries the error (the router 503s writes)
	// while View still serves from a fresh replica.
	fakes[0].set(func(f *fakeBackend) {
		f.statusErr = "connection refused"
		f.viewErr = errors.New("connection refused")
	})
	fakes[1].set(func(f *fakeBackend) { f.gen = 4 })
	fakes[2].set(func(f *fakeBackend) { f.gen = 4 })
	if st := rs.Status(); st.Err == "" {
		t.Fatal("Status with dead primary must carry its error")
	}
	if v := rs.View(); v.Err != nil || v.Snap.Gen != 4 {
		t.Fatalf("View with dead primary = gen %d, err %v; want healthy gen 4", v.Snap.Gen, v.Err)
	}
}

func TestReplicaSetStats(t *testing.T) {
	rs, fakes := newTestSet(t, []uint64{9, 7, 9}, ReplicaSetConfig{HedgeFraction: -1})
	fakes[2].set(func(f *fakeBackend) { f.pending = 12; f.draining = true })
	if _, err := rs.Read(context.Background(), instantRead); err != nil {
		t.Fatalf("Read: %v", err)
	}

	st := rs.ReplicaStats()
	if st.Shard != 0 || st.Reads != 1 || len(st.Members) != 3 {
		t.Fatalf("stats = %+v, want shard 0, 1 read, 3 members", st)
	}
	if st.Members[0].Role != "primary" || st.Members[1].Role != "replica" {
		t.Fatalf("roles = %q/%q", st.Members[0].Role, st.Members[1].Role)
	}
	if st.Members[1].Lag != 2 || st.Members[0].Lag != 0 || st.Members[2].Lag != 0 {
		t.Fatalf("lags = %d/%d/%d, want 0/2/0", st.Members[0].Lag, st.Members[1].Lag, st.Members[2].Lag)
	}
	if st.Members[2].QueueDepth != 12 || !st.Members[2].Draining {
		t.Fatalf("member 2 = %+v, want queue depth 12 and draining", st.Members[2])
	}
	if !st.Members[0].Healthy {
		t.Fatal("healthy primary reported unhealthy")
	}
	if st.Floor != 9 {
		t.Fatalf("floor = %d, want 9 (ratcheted by the read)", st.Floor)
	}
}

func TestReplicaSetCloseClosesAllMembers(t *testing.T) {
	rs, fakes := newTestSet(t, []uint64{1, 1, 1}, ReplicaSetConfig{})
	rs.Close()
	for i, f := range fakes {
		f.mu.Lock()
		closed := f.closed
		f.mu.Unlock()
		if !closed {
			t.Fatalf("member %d not closed", i)
		}
	}
}
