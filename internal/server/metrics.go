package server

// Per-endpoint request metrics: a lock-free count + latency histogram
// per route, recorded by a middleware around every handler, served in
// full at GET /debug/metrics and summarized in /healthz. Everything is
// plain atomics — no external metrics dependency — so the hot path
// costs two atomic adds per request.

import (
	"net/http"
	"sync/atomic"
	"time"
)

// latencyBoundsMillis are the histogram bucket upper bounds; one
// implicit +Inf bucket follows. Log-ish spacing from sub-millisecond
// index lookups to multi-second OCA-blocked waits.
var latencyBoundsMillis = []float64{1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000}

// routeStats accumulates one route's counters. All fields are atomics;
// reads may tear across fields (a count observed without its latency),
// which is fine for monitoring.
type routeStats struct {
	count     atomic.Uint64
	errors    atomic.Uint64 // 5xx responses
	sumMicros atomic.Uint64
	buckets   []atomic.Uint64 // len(latencyBoundsMillis)+1; last is +Inf
}

func newRouteStats() *routeStats {
	return &routeStats{buckets: make([]atomic.Uint64, len(latencyBoundsMillis)+1)}
}

func (rs *routeStats) observe(d time.Duration, status int) {
	rs.count.Add(1)
	if status >= 500 {
		rs.errors.Add(1)
	}
	rs.sumMicros.Add(uint64(d.Microseconds()))
	ms := float64(d) / float64(time.Millisecond)
	i := 0
	for i < len(latencyBoundsMillis) && ms > latencyBoundsMillis[i] {
		i++
	}
	rs.buckets[i].Add(1)
}

// httpMetrics is the fixed per-route registry. Routes are registered at
// Handler construction, so serving needs no lock at all.
type httpMetrics struct {
	names []string
	stats map[string]*routeStats
}

func newHTTPMetrics() *httpMetrics {
	return &httpMetrics{stats: make(map[string]*routeStats)}
}

// instrument registers a route and wraps its handler with latency and
// status recording. Registration is idempotent: a route name seen
// before reuses its counters, so building Handler() more than once
// (two listeners over one Server) keeps one set of stats per route.
// Like Handler itself, it is for setup time, not concurrent use.
func (m *httpMetrics) instrument(name string, h http.HandlerFunc) http.HandlerFunc {
	rs, ok := m.stats[name]
	if !ok {
		rs = newRouteStats()
		m.names = append(m.names, name)
		m.stats[name] = rs
	}
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sr := &statusRecorder{ResponseWriter: w}
		h(sr, r)
		status := sr.status
		if status == 0 {
			status = http.StatusOK
		}
		rs.observe(time.Since(start), status)
	}
}

// statusRecorder captures the response status while passing Flush and
// ResponseController unwrapping through to the underlying writer (the
// streaming export depends on both).
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (sr *statusRecorder) WriteHeader(code int) {
	if sr.status == 0 {
		sr.status = code
	}
	sr.ResponseWriter.WriteHeader(code)
}

func (sr *statusRecorder) Write(b []byte) (int, error) {
	if sr.status == 0 {
		sr.status = http.StatusOK
	}
	return sr.ResponseWriter.Write(b)
}

func (sr *statusRecorder) Flush() {
	if f, ok := sr.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func (sr *statusRecorder) Unwrap() http.ResponseWriter { return sr.ResponseWriter }

// routeMetrics is one route's entry in the /debug/metrics body.
type routeMetrics struct {
	Count      uint64  `json:"count"`
	Errors     uint64  `json:"errors"`
	MeanMillis float64 `json:"mean_millis"`
	// Buckets holds per-bucket (non-cumulative) counts aligned with the
	// top-level bounds_millis array; the final entry is the +Inf bucket.
	Buckets []uint64 `json:"buckets"`
}

// metricsResponse is the GET /debug/metrics body.
type metricsResponse struct {
	BoundsMillis []float64               `json:"bounds_millis"`
	Routes       map[string]routeMetrics `json:"routes"`
}

func (m *httpMetrics) handleDebug(w http.ResponseWriter, _ *http.Request) {
	resp := metricsResponse{
		BoundsMillis: latencyBoundsMillis,
		Routes:       make(map[string]routeMetrics, len(m.names)),
	}
	for _, name := range m.names {
		rs := m.stats[name]
		rm := routeMetrics{
			Count:   rs.count.Load(),
			Errors:  rs.errors.Load(),
			Buckets: make([]uint64, len(rs.buckets)),
		}
		if rm.Count > 0 {
			rm.MeanMillis = float64(rs.sumMicros.Load()) / float64(rm.Count) / 1000
		}
		for i := range rs.buckets {
			rm.Buckets[i] = rs.buckets[i].Load()
		}
		resp.Routes[name] = rm
	}
	writeJSON(w, http.StatusOK, resp)
}

// routeSummary is one route's compact entry in the /healthz summary.
type routeSummary struct {
	Count      uint64  `json:"count"`
	Errors     uint64  `json:"errors,omitempty"`
	MeanMillis float64 `json:"mean_millis"`
}

// requestsSummary is the /healthz "requests" object: total traffic plus
// per-route counts and mean latency for every route that has seen at
// least one request (the full histograms live at /debug/metrics).
type requestsSummary struct {
	Total  uint64                  `json:"total"`
	Routes map[string]routeSummary `json:"routes,omitempty"`
}

func (m *httpMetrics) summary() *requestsSummary {
	out := &requestsSummary{}
	for _, name := range m.names {
		rs := m.stats[name]
		c := rs.count.Load()
		if c == 0 {
			continue
		}
		out.Total += c
		if out.Routes == nil {
			out.Routes = make(map[string]routeSummary)
		}
		out.Routes[name] = routeSummary{
			Count:      c,
			Errors:     rs.errors.Load(),
			MeanMillis: float64(rs.sumMicros.Load()) / float64(c) / 1000,
		}
	}
	return out
}
