package server

// Per-endpoint request metrics: a lock-free count + latency histogram
// per route, recorded by a middleware around every handler, served in
// full at GET /debug/metrics and summarized in /healthz. Everything is
// plain atomics — no external metrics dependency — so the hot path
// costs two atomic adds per request.

import (
	"fmt"
	"net/http"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/persist"
	"repro/internal/resilience"
	"repro/internal/shard"
)

// latencyBoundsMillis are the histogram bucket upper bounds; one
// implicit +Inf bucket follows. Log-ish spacing from sub-millisecond
// index lookups to multi-second OCA-blocked waits.
var latencyBoundsMillis = []float64{1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000}

// routeStats accumulates one route's counters. All fields are atomics;
// reads may tear across fields (a count observed without its latency),
// which is fine for monitoring.
type routeStats struct {
	count     atomic.Uint64
	errors    atomic.Uint64 // 5xx responses
	sumMicros atomic.Uint64
	buckets   []atomic.Uint64 // len(latencyBoundsMillis)+1; last is +Inf
}

func newRouteStats() *routeStats {
	return &routeStats{buckets: make([]atomic.Uint64, len(latencyBoundsMillis)+1)}
}

func (rs *routeStats) observe(d time.Duration, status int) {
	rs.count.Add(1)
	if status >= 500 {
		rs.errors.Add(1)
	}
	rs.sumMicros.Add(uint64(d.Microseconds()))
	ms := float64(d) / float64(time.Millisecond)
	i := 0
	for i < len(latencyBoundsMillis) && ms > latencyBoundsMillis[i] {
		i++
	}
	rs.buckets[i].Add(1)
}

// httpMetrics is the fixed per-route registry. Routes are registered at
// Handler construction, so serving needs no lock at all.
type httpMetrics struct {
	names []string
	stats map[string]*routeStats
}

func newHTTPMetrics() *httpMetrics {
	return &httpMetrics{stats: make(map[string]*routeStats)}
}

// instrument registers a route and wraps its handler with latency and
// status recording. Registration is idempotent: a route name seen
// before reuses its counters, so building Handler() more than once
// (two listeners over one Server) keeps one set of stats per route.
// Like Handler itself, it is for setup time, not concurrent use.
func (m *httpMetrics) instrument(name string, h http.HandlerFunc) http.HandlerFunc {
	rs, ok := m.stats[name]
	if !ok {
		rs = newRouteStats()
		m.names = append(m.names, name)
		m.stats[name] = rs
	}
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sr := &statusRecorder{ResponseWriter: w}
		h(sr, r)
		status := sr.status
		if status == 0 {
			status = http.StatusOK
		}
		rs.observe(time.Since(start), status)
	}
}

// statusRecorder captures the response status while passing Flush and
// ResponseController unwrapping through to the underlying writer (the
// streaming export depends on both).
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (sr *statusRecorder) WriteHeader(code int) {
	if sr.status == 0 {
		sr.status = code
	}
	sr.ResponseWriter.WriteHeader(code)
}

func (sr *statusRecorder) Write(b []byte) (int, error) {
	if sr.status == 0 {
		sr.status = http.StatusOK
	}
	return sr.ResponseWriter.Write(b)
}

func (sr *statusRecorder) Flush() {
	if f, ok := sr.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func (sr *statusRecorder) Unwrap() http.ResponseWriter { return sr.ResponseWriter }

// routeMetrics is one route's entry in the /debug/metrics body.
type routeMetrics struct {
	Count      uint64  `json:"count"`
	Errors     uint64  `json:"errors"`
	MeanMillis float64 `json:"mean_millis"`
	// Buckets holds per-bucket (non-cumulative) counts aligned with the
	// top-level bounds_millis array; the final entry is the +Inf bucket.
	Buckets []uint64 `json:"buckets"`
}

// refreshMetrics is one shard's refresh-side entry in /debug/metrics:
// the queue-depth/staleness gauges plus how the served generation was
// last rebuilt. The unsharded path reports a single shard 0.
type refreshMetrics struct {
	Shard                   int     `json:"shard"`
	Generation              uint64  `json:"generation"`
	QueueDepth              int     `json:"queue_depth"`
	OldestPendingAgeSeconds float64 `json:"oldest_pending_age_seconds"`
	Rebuilding              bool    `json:"rebuilding"`
	RebuildMode             string  `json:"rebuild_mode,omitempty"`
	DirtyNodes              int     `json:"dirty_nodes,omitempty"`
}

// resilienceMetrics is one shard backend's breaker/retry/deadline
// counter block in /debug/metrics. Replicated shards aggregate their
// members (each member's own block rides on the replicas vector).
type resilienceMetrics struct {
	Shard int `json:"shard"`
	resilience.Stats
}

// metricsResponse is the GET /debug/metrics body.
type metricsResponse struct {
	BoundsMillis []float64               `json:"bounds_millis"`
	Routes       map[string]routeMetrics `json:"routes"`
	// Refresh is the per-shard refresh gauge vector (absent until the
	// first cover exists; never forces a lazy build).
	Refresh []refreshMetrics `json:"refresh,omitempty"`
	// Persist is the durability state (servers with a data directory
	// only): segments on disk, live WAL size, batches logged.
	Persist *persist.Stats `json:"persist,omitempty"`
	// SearchCache is the seeded-search result cache state (absent when
	// caching is disabled): occupancy plus the hit / miss / coalesce /
	// carry-forward counters.
	SearchCache *searchCacheStats `json:"search_cache,omitempty"`
	// Replicas is the per-shard replica-set state (replicated routers
	// only): read/hedge/failover counters plus every member's freshness
	// lag and live load. Shards without replica sets are omitted.
	Replicas []*shard.ReplicaSetStats `json:"replicas,omitempty"`
	// Resilience is the per-shard breaker/retry/deadline counter vector
	// (routers with remote backends only): breaker state and trips,
	// retries spent, budget refusals, RPCs lost to deadlines.
	Resilience []resilienceMetrics `json:"resilience,omitempty"`
	// Rebalance is the partition-map epoch and migration counters
	// (providers that can rebalance only).
	Rebalance *shard.RebalanceStatus `json:"rebalance,omitempty"`
}

// handleDebugMetrics serves the metrics registry — JSON by default, the
// Prometheus text exposition format with ?format=prometheus (for
// scrapers; the per-shard queue-depth and oldest-pending-age gauges are
// the staleness signals worth alerting on).
func (s *Server) handleDebugMetrics(w http.ResponseWriter, r *http.Request) {
	refresh := s.refreshMetrics()
	var pst *persist.Stats
	if p := s.cfg.Persist; p != nil {
		st := p.Stats()
		pst = &st
	}
	var cst *searchCacheStats
	if s.cache != nil {
		st := s.cache.stats()
		cst = &st
	}
	reps := s.replicaStats()
	res := s.resilienceStats()
	var rbs *shard.RebalanceStatus
	if rb, ok := s.sp.(Rebalancer); ok {
		st := rb.RebalanceStatus()
		rbs = &st
	}
	if r.URL.Query().Get("format") == "prometheus" {
		s.metrics.writePrometheus(w, refresh, pst, cst, reps, res, rbs)
		return
	}
	s.metrics.handleDebug(w, refresh, pst, cst, reps, res, rbs)
}

// replicaStats asks the provider for per-shard replica-set state; nil
// when the provider has no replicated backends (single path, plain
// sharded path) or no shard is replicated.
func (s *Server) replicaStats() []*shard.ReplicaSetStats {
	rp, ok := s.sp.(interface {
		ReplicaStats() []*shard.ReplicaSetStats
	})
	if !ok {
		return nil
	}
	all := rp.ReplicaStats()
	out := all[:0]
	for _, st := range all {
		if st != nil {
			out = append(out, st)
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// resilienceStats asks the provider for each shard backend's
// breaker/retry/deadline counters; nil when no backend has a transport
// to break (single path, in-process sharded path).
func (s *Server) resilienceStats() []resilienceMetrics {
	rp, ok := s.sp.(interface {
		ResilienceStats() []*resilience.Stats
	})
	if !ok {
		return nil
	}
	var out []resilienceMetrics
	for sh, st := range rp.ResilienceStats() {
		if st != nil {
			out = append(out, resilienceMetrics{Shard: sh, Stats: *st})
		}
	}
	return out
}

// refreshMetrics assembles the per-shard gauge vector from one status
// and one view per shard. Nil until the first cover exists, so
// observability never blocks on (or triggers) an OCA run.
func (s *Server) refreshMetrics() []refreshMetrics {
	if !s.sp.Ready() {
		return nil
	}
	statuses := s.sp.Statuses()
	views, err := s.sp.Views()
	if err != nil || len(views) != len(statuses) {
		return nil
	}
	out := make([]refreshMetrics, len(statuses))
	for i, ws := range statuses {
		snap := views[i].Snap
		e := refreshMetrics{
			Shard:       ws.Shard,
			Generation:  snap.Gen,
			QueueDepth:  ws.Status.Pending,
			Rebuilding:  ws.Status.Rebuilding,
			RebuildMode: snap.RebuildMode,
			DirtyNodes:  snap.DirtyNodes,
		}
		if !ws.Status.OldestPending.IsZero() {
			e.OldestPendingAgeSeconds = time.Since(ws.Status.OldestPending).Seconds()
		}
		out[i] = e
	}
	return out
}

func (m *httpMetrics) handleDebug(w http.ResponseWriter, refresh []refreshMetrics, pst *persist.Stats, cst *searchCacheStats, reps []*shard.ReplicaSetStats, res []resilienceMetrics, rbs *shard.RebalanceStatus) {
	resp := metricsResponse{
		BoundsMillis: latencyBoundsMillis,
		Routes:       make(map[string]routeMetrics, len(m.names)),
		Refresh:      refresh,
		Persist:      pst,
		SearchCache:  cst,
		Replicas:     reps,
		Resilience:   res,
		Rebalance:    rbs,
	}
	for _, name := range m.names {
		rs := m.stats[name]
		rm := routeMetrics{
			Count:   rs.count.Load(),
			Errors:  rs.errors.Load(),
			Buckets: make([]uint64, len(rs.buckets)),
		}
		if rm.Count > 0 {
			rm.MeanMillis = float64(rs.sumMicros.Load()) / float64(rm.Count) / 1000
		}
		for i := range rs.buckets {
			rm.Buckets[i] = rs.buckets[i].Load()
		}
		resp.Routes[name] = rm
	}
	writeJSON(w, http.StatusOK, resp)
}

// promReplacer escapes Prometheus label values.
var promReplacer = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

func promEscape(v string) string { return promReplacer.Replace(v) }

// writePrometheus renders the registry in the Prometheus text
// exposition format: per-shard refresh gauges plus per-route request
// counters. Everything is assembled from the same atomics as the JSON
// body — no extra bookkeeping on the hot path.
func (m *httpMetrics) writePrometheus(w http.ResponseWriter, refresh []refreshMetrics, pst *persist.Stats, cst *searchCacheStats, reps []*shard.ReplicaSetStats, res []resilienceMetrics, rbs *shard.RebalanceStatus) {
	var b strings.Builder
	if rbs != nil {
		b.WriteString("# HELP ocad_partition_epoch The partition map epoch the router currently routes under.\n")
		b.WriteString("# TYPE ocad_partition_epoch gauge\n")
		fmt.Fprintf(&b, "ocad_partition_epoch %d\n", rbs.Epoch)
		b.WriteString("# HELP ocad_migration_total Completed shard rebalances (flips).\n")
		b.WriteString("# TYPE ocad_migration_total counter\n")
		fmt.Fprintf(&b, "ocad_migration_total %d\n", rbs.Migrations)
		b.WriteString("# HELP ocad_migration_aborted_total Rebalances rolled back to their old epoch.\n")
		b.WriteString("# TYPE ocad_migration_aborted_total counter\n")
		fmt.Fprintf(&b, "ocad_migration_aborted_total %d\n", rbs.Aborted)
		b.WriteString("# HELP ocad_migration_active Whether a rebalance transfer window is currently open.\n")
		b.WriteString("# TYPE ocad_migration_active gauge\n")
		active := 0
		if rbs.Active {
			active = 1
		}
		fmt.Fprintf(&b, "ocad_migration_active %d\n", active)
		b.WriteString("# HELP ocad_halo_sync_total Completed halo refresh sweeps.\n")
		b.WriteString("# TYPE ocad_halo_sync_total counter\n")
		fmt.Fprintf(&b, "ocad_halo_sync_total %d\n", rbs.HaloSyncs)
	}
	b.WriteString("# HELP ocad_shard_queue_depth Mutations queued on the shard, not yet reflected in any snapshot.\n")
	b.WriteString("# TYPE ocad_shard_queue_depth gauge\n")
	for _, e := range refresh {
		fmt.Fprintf(&b, "ocad_shard_queue_depth{shard=\"%d\"} %d\n", e.Shard, e.QueueDepth)
	}
	b.WriteString("# HELP ocad_shard_oldest_pending_age_seconds Age of the shard's oldest queued mutation (0 when the queue is empty).\n")
	b.WriteString("# TYPE ocad_shard_oldest_pending_age_seconds gauge\n")
	for _, e := range refresh {
		fmt.Fprintf(&b, "ocad_shard_oldest_pending_age_seconds{shard=\"%d\"} %g\n", e.Shard, e.OldestPendingAgeSeconds)
	}
	b.WriteString("# HELP ocad_shard_generation The shard's served snapshot generation.\n")
	b.WriteString("# TYPE ocad_shard_generation gauge\n")
	for _, e := range refresh {
		fmt.Fprintf(&b, "ocad_shard_generation{shard=\"%d\"} %d\n", e.Shard, e.Generation)
	}
	b.WriteString("# HELP ocad_shard_rebuilding Whether a rebuild is in flight on the shard.\n")
	b.WriteString("# TYPE ocad_shard_rebuilding gauge\n")
	for _, e := range refresh {
		v := 0
		if e.Rebuilding {
			v = 1
		}
		fmt.Fprintf(&b, "ocad_shard_rebuilding{shard=\"%d\"} %d\n", e.Shard, v)
	}
	b.WriteString("# HELP ocad_shard_rebuild_dirty_nodes Dirty-region size of the shard's last rebuild, by mode.\n")
	b.WriteString("# TYPE ocad_shard_rebuild_dirty_nodes gauge\n")
	for _, e := range refresh {
		if e.RebuildMode == "" {
			continue
		}
		fmt.Fprintf(&b, "ocad_shard_rebuild_dirty_nodes{shard=\"%d\",mode=\"%s\"} %d\n", e.Shard, promEscape(e.RebuildMode), e.DirtyNodes)
	}
	if pst != nil {
		b.WriteString("# HELP ocad_persist_segments Snapshot segments retained in the data directory.\n")
		b.WriteString("# TYPE ocad_persist_segments gauge\n")
		fmt.Fprintf(&b, "ocad_persist_segments %d\n", pst.Segments)
		b.WriteString("# HELP ocad_persist_newest_segment_generation Generation of the newest sealed segment.\n")
		b.WriteString("# TYPE ocad_persist_newest_segment_generation gauge\n")
		fmt.Fprintf(&b, "ocad_persist_newest_segment_generation %d\n", pst.NewestSegment)
		b.WriteString("# HELP ocad_persist_wal_bytes Size of the live write-ahead log.\n")
		b.WriteString("# TYPE ocad_persist_wal_bytes gauge\n")
		fmt.Fprintf(&b, "ocad_persist_wal_bytes %d\n", pst.WALBytes)
		b.WriteString("# HELP ocad_persist_logged_batches_total Mutation batches logged to the WAL since start.\n")
		b.WriteString("# TYPE ocad_persist_logged_batches_total counter\n")
		fmt.Fprintf(&b, "ocad_persist_logged_batches_total %d\n", pst.LoggedBatches)
		b.WriteString("# HELP ocad_persist_segment_failures_total Segment writes that failed since start.\n")
		b.WriteString("# TYPE ocad_persist_segment_failures_total counter\n")
		fmt.Fprintf(&b, "ocad_persist_segment_failures_total %d\n", pst.SegmentFailures)
	}
	if cst != nil {
		b.WriteString("# HELP ocad_search_cache_entries Entries resident in the seeded-search result cache.\n")
		b.WriteString("# TYPE ocad_search_cache_entries gauge\n")
		fmt.Fprintf(&b, "ocad_search_cache_entries %d\n", cst.Entries)
		b.WriteString("# HELP ocad_search_cache_capacity Configured entry capacity of the search cache.\n")
		b.WriteString("# TYPE ocad_search_cache_capacity gauge\n")
		fmt.Fprintf(&b, "ocad_search_cache_capacity %d\n", cst.Capacity)
		b.WriteString("# HELP ocad_search_cache_hits_total Searches answered from the cache.\n")
		b.WriteString("# TYPE ocad_search_cache_hits_total counter\n")
		fmt.Fprintf(&b, "ocad_search_cache_hits_total %d\n", cst.Hits)
		b.WriteString("# HELP ocad_search_cache_misses_total Searches that ran because no entry or flight existed.\n")
		b.WriteString("# TYPE ocad_search_cache_misses_total counter\n")
		fmt.Fprintf(&b, "ocad_search_cache_misses_total %d\n", cst.Misses)
		b.WriteString("# HELP ocad_search_cache_coalesced_total Requests that waited on a concurrent identical search instead of running their own.\n")
		b.WriteString("# TYPE ocad_search_cache_coalesced_total counter\n")
		fmt.Fprintf(&b, "ocad_search_cache_coalesced_total %d\n", cst.Coalesced)
		b.WriteString("# HELP ocad_search_cache_carried_forward_total Entries re-keyed to a new generation across incremental publishes.\n")
		b.WriteString("# TYPE ocad_search_cache_carried_forward_total counter\n")
		fmt.Fprintf(&b, "ocad_search_cache_carried_forward_total %d\n", cst.CarriedForward)
		b.WriteString("# HELP ocad_search_cache_carry_dropped_total Carry-forward candidates dropped by a failed similarity spot check.\n")
		b.WriteString("# TYPE ocad_search_cache_carry_dropped_total counter\n")
		fmt.Fprintf(&b, "ocad_search_cache_carry_dropped_total %d\n", cst.CarryDropped)
		b.WriteString("# HELP ocad_search_cache_evicted_total Entries evicted by the LRU capacity bound.\n")
		b.WriteString("# TYPE ocad_search_cache_evicted_total counter\n")
		fmt.Fprintf(&b, "ocad_search_cache_evicted_total %d\n", cst.Evicted)
		b.WriteString("# HELP ocad_search_cache_stale_pruned_total Superseded-generation entries pruned at publish.\n")
		b.WriteString("# TYPE ocad_search_cache_stale_pruned_total counter\n")
		fmt.Fprintf(&b, "ocad_search_cache_stale_pruned_total %d\n", cst.StalePruned)
	}
	if len(reps) > 0 {
		b.WriteString("# HELP ocad_replica_lag_generations Generations a replica-set member trails its primary by.\n")
		b.WriteString("# TYPE ocad_replica_lag_generations gauge\n")
		for _, st := range reps {
			for _, mem := range st.Members {
				fmt.Fprintf(&b, "ocad_replica_lag_generations{shard=\"%d\",replica=\"%s\"} %d\n",
					st.Shard, promEscape(mem.Addr), mem.Lag)
			}
		}
		b.WriteString("# HELP ocad_replica_inflight Reads in flight per replica-set member.\n")
		b.WriteString("# TYPE ocad_replica_inflight gauge\n")
		for _, st := range reps {
			for _, mem := range st.Members {
				fmt.Fprintf(&b, "ocad_replica_inflight{shard=\"%d\",replica=\"%s\"} %d\n",
					st.Shard, promEscape(mem.Addr), mem.InFlight)
			}
		}
		b.WriteString("# HELP ocad_replica_hedges_total Hedged (backup) reads issued, per shard.\n")
		b.WriteString("# TYPE ocad_replica_hedges_total counter\n")
		for _, st := range reps {
			fmt.Fprintf(&b, "ocad_replica_hedges_total{shard=\"%d\"} %d\n", st.Shard, st.Hedges)
		}
		b.WriteString("# HELP ocad_replica_hedge_wins_total Hedged reads whose backup answered first, per shard.\n")
		b.WriteString("# TYPE ocad_replica_hedge_wins_total counter\n")
		for _, st := range reps {
			fmt.Fprintf(&b, "ocad_replica_hedge_wins_total{shard=\"%d\"} %d\n", st.Shard, st.HedgeWins)
		}
	}
	if len(res) > 0 {
		b.WriteString("# HELP ocad_breaker_state Circuit breaker state per shard backend (0 closed, 1 half-open, 2 open).\n")
		b.WriteString("# TYPE ocad_breaker_state gauge\n")
		for _, e := range res {
			v := 0
			switch e.BreakerState {
			case "half_open":
				v = 1
			case "open":
				v = 2
			}
			fmt.Fprintf(&b, "ocad_breaker_state{shard=\"%d\"} %d\n", e.Shard, v)
		}
		b.WriteString("# HELP ocad_breaker_trips_total Times the shard backend's breaker opened.\n")
		b.WriteString("# TYPE ocad_breaker_trips_total counter\n")
		for _, e := range res {
			fmt.Fprintf(&b, "ocad_breaker_trips_total{shard=\"%d\"} %d\n", e.Shard, e.BreakerTrips)
		}
		b.WriteString("# HELP ocad_breaker_fast_fails_total RPCs refused locally because the breaker was open.\n")
		b.WriteString("# TYPE ocad_breaker_fast_fails_total counter\n")
		for _, e := range res {
			fmt.Fprintf(&b, "ocad_breaker_fast_fails_total{shard=\"%d\"} %d\n", e.Shard, e.BreakerFastFails)
		}
		b.WriteString("# HELP ocad_retries_total Idempotent-read retry attempts spent against the shard backend.\n")
		b.WriteString("# TYPE ocad_retries_total counter\n")
		for _, e := range res {
			fmt.Fprintf(&b, "ocad_retries_total{shard=\"%d\"} %d\n", e.Shard, e.Retries)
		}
		b.WriteString("# HELP ocad_retry_budget_exhausted_total Retries refused by the token-bucket retry budget.\n")
		b.WriteString("# TYPE ocad_retry_budget_exhausted_total counter\n")
		for _, e := range res {
			fmt.Fprintf(&b, "ocad_retry_budget_exhausted_total{shard=\"%d\"} %d\n", e.Shard, e.RetryBudgetExhausted)
		}
		b.WriteString("# HELP ocad_deadline_exceeded_total Shard RPCs abandoned to a deadline or caller hang-up.\n")
		b.WriteString("# TYPE ocad_deadline_exceeded_total counter\n")
		for _, e := range res {
			fmt.Fprintf(&b, "ocad_deadline_exceeded_total{shard=\"%d\"} %d\n", e.Shard, e.DeadlineExceeded)
		}
	}
	b.WriteString("# HELP ocad_http_requests_total Requests served, by route.\n")
	b.WriteString("# TYPE ocad_http_requests_total counter\n")
	for _, name := range m.names {
		fmt.Fprintf(&b, "ocad_http_requests_total{route=\"%s\"} %d\n", promEscape(name), m.stats[name].count.Load())
	}
	b.WriteString("# HELP ocad_http_request_errors_total 5xx responses, by route.\n")
	b.WriteString("# TYPE ocad_http_request_errors_total counter\n")
	for _, name := range m.names {
		fmt.Fprintf(&b, "ocad_http_request_errors_total{route=\"%s\"} %d\n", promEscape(name), m.stats[name].errors.Load())
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write([]byte(b.String()))
}

// routeSummary is one route's compact entry in the /healthz summary.
type routeSummary struct {
	Count      uint64  `json:"count"`
	Errors     uint64  `json:"errors,omitempty"`
	MeanMillis float64 `json:"mean_millis"`
}

// requestsSummary is the /healthz "requests" object: total traffic plus
// per-route counts and mean latency for every route that has seen at
// least one request (the full histograms live at /debug/metrics).
type requestsSummary struct {
	Total  uint64                  `json:"total"`
	Routes map[string]routeSummary `json:"routes,omitempty"`
}

func (m *httpMetrics) summary() *requestsSummary {
	out := &requestsSummary{}
	for _, name := range m.names {
		rs := m.stats[name]
		c := rs.count.Load()
		if c == 0 {
			continue
		}
		out.Total += c
		if out.Routes == nil {
			out.Routes = make(map[string]routeSummary)
		}
		out.Routes[name] = routeSummary{
			Count:      c,
			Errors:     rs.errors.Load(),
			MeanMillis: float64(rs.sumMicros.Load()) / float64(c) / 1000,
		}
	}
	return out
}
