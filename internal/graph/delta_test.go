package graph

import (
	"math/rand"
	"testing"
)

// graphsEqual compares two graphs structurally.
func graphsEqual(a, b *Graph) bool {
	if a.N() != b.N() || a.M() != b.M() {
		return false
	}
	for v := int32(0); int(v) < a.N(); v++ {
		na, nb := a.Neighbors(v), b.Neighbors(v)
		if len(na) != len(nb) {
			return false
		}
		for i := range na {
			if na[i] != nb[i] {
				return false
			}
		}
	}
	return true
}

// validateCSR checks the CSR invariants Apply must preserve.
func validateCSR(t *testing.T, g *Graph) {
	t.Helper()
	for v := int32(0); int(v) < g.N(); v++ {
		nb := g.Neighbors(v)
		for i, w := range nb {
			if w < 0 || int(w) >= g.N() {
				t.Fatalf("node %d: neighbor %d out of range", v, w)
			}
			if w == v {
				t.Fatalf("node %d: self loop", v)
			}
			if i > 0 && nb[i-1] >= w {
				t.Fatalf("node %d: adjacency not strictly sorted: %v", v, nb)
			}
			if !g.HasEdge(w, v) {
				t.Fatalf("edge {%d,%d} not symmetric", v, w)
			}
		}
	}
}

func TestDeltaAddRemove(t *testing.T) {
	base := FromEdges(6, [][2]int32{{0, 1}, {1, 2}, {2, 3}, {3, 4}})
	d := NewDelta(base)
	if err := d.AddEdge(0, 5); err != nil {
		t.Fatal(err)
	}
	if err := d.AddEdge(4, 0); err != nil {
		t.Fatal(err)
	}
	if err := d.RemoveEdge(2, 1); err != nil {
		t.Fatal(err)
	}
	g := d.Apply()
	validateCSR(t, g)
	want := FromEdges(6, [][2]int32{{0, 1}, {2, 3}, {3, 4}, {0, 5}, {0, 4}})
	if !graphsEqual(g, want) {
		t.Fatalf("delta result differs from rebuilt graph")
	}
	// The base graph is untouched.
	if base.M() != 4 || base.HasEdge(0, 5) {
		t.Fatal("Apply mutated the base graph")
	}
}

func TestDeltaLastOpWins(t *testing.T) {
	base := FromEdges(4, [][2]int32{{0, 1}})
	d := NewDelta(base)
	// add then remove -> absent; remove then add -> present.
	_ = d.AddEdge(2, 3)
	_ = d.RemoveEdge(2, 3)
	_ = d.RemoveEdge(0, 1)
	_ = d.AddEdge(0, 1)
	g := d.Apply()
	validateCSR(t, g)
	if g.HasEdge(2, 3) {
		t.Error("add-then-remove left the edge present")
	}
	if !g.HasEdge(0, 1) {
		t.Error("remove-then-add dropped the edge")
	}
}

func TestDeltaNoops(t *testing.T) {
	base := FromEdges(3, [][2]int32{{0, 1}})
	// Empty delta returns the base graph itself.
	if g := NewDelta(base).Apply(); g != base {
		t.Error("empty delta did not return the base graph")
	}
	// Adding an existing edge and removing a missing one change nothing.
	d := NewDelta(base)
	_ = d.AddEdge(0, 1)
	_ = d.RemoveEdge(1, 2)
	if g := d.Apply(); g != base {
		t.Error("no-op delta did not return the base graph")
	}
}

func TestDeltaRejectsBadEdges(t *testing.T) {
	d := NewDelta(FromEdges(3, nil))
	if err := d.AddEdge(1, 1); err == nil {
		t.Error("self loop accepted")
	}
	if err := d.AddEdge(-1, 2); err == nil {
		t.Error("negative endpoint accepted")
	}
	if err := d.AddEdge(0, 3); err == nil {
		t.Error("out-of-range endpoint accepted")
	}
	if err := d.RemoveEdge(0, 99); err == nil {
		t.Error("out-of-range removal accepted")
	}
	if d.Len() != 0 {
		t.Errorf("rejected edges were recorded: Len = %d", d.Len())
	}
}

func TestDeltaTouched(t *testing.T) {
	d := NewDelta(FromEdges(10, [][2]int32{{0, 1}}))
	_ = d.AddEdge(5, 2)
	_ = d.RemoveEdge(0, 1)
	_ = d.AddEdge(2, 7)
	got := d.Touched()
	want := []int32{0, 1, 2, 5, 7}
	if len(got) != len(want) {
		t.Fatalf("Touched = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Touched = %v, want %v", got, want)
		}
	}
}

// TestDeltaMatchesBuilder cross-checks Apply against a from-scratch
// Builder over randomized edit sequences.
func TestDeltaMatchesBuilder(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const n = 30
	for trial := 0; trial < 25; trial++ {
		// Random base graph.
		edges := map[[2]int32]bool{}
		for k := 0; k < 60; k++ {
			u, v := int32(rng.Intn(n)), int32(rng.Intn(n))
			if u == v {
				continue
			}
			if u > v {
				u, v = v, u
			}
			edges[[2]int32{u, v}] = true
		}
		var pairs [][2]int32
		for e := range edges {
			pairs = append(pairs, e)
		}
		base := FromEdges(n, pairs)

		// Random edit sequence, mirrored into the edge set.
		d := NewDelta(base)
		for k := 0; k < 40; k++ {
			u, v := int32(rng.Intn(n)), int32(rng.Intn(n))
			if u == v {
				continue
			}
			if u > v {
				u, v = v, u
			}
			if rng.Intn(2) == 0 {
				if err := d.AddEdge(u, v); err != nil {
					t.Fatal(err)
				}
				edges[[2]int32{u, v}] = true
			} else {
				if err := d.RemoveEdge(u, v); err != nil {
					t.Fatal(err)
				}
				delete(edges, [2]int32{u, v})
			}
		}
		got := d.Apply()
		validateCSR(t, got)
		pairs = pairs[:0]
		for e := range edges {
			pairs = append(pairs, e)
		}
		want := FromEdges(n, pairs)
		if !graphsEqual(got, want) {
			t.Fatalf("trial %d: delta result differs from rebuilt graph", trial)
		}
	}
}
