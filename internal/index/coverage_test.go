package index

import (
	"testing"

	"repro/internal/cover"
)

func TestCoverageCounts(t *testing.T) {
	cv := cover.NewCover([]cover.Community{
		{0, 1, 2},
		{2, 3},
		{2, 5},
	})
	ix := Build(cv, 7)

	covered, overlapped, memberships := ix.CoverageCounts(nil)
	if covered != 5 || overlapped != 1 || memberships != 7 {
		t.Errorf("all nodes: (%d, %d, %d), want (5, 1, 7)", covered, overlapped, memberships)
	}

	// Even nodes only: 0, 2, 4, 6 → covered {0, 2}, overlapped {2},
	// memberships 1 + 3.
	even := func(v int32) bool { return v%2 == 0 }
	covered, overlapped, memberships = ix.CoverageCounts(even)
	if covered != 2 || overlapped != 1 || memberships != 4 {
		t.Errorf("even nodes: (%d, %d, %d), want (2, 1, 4)", covered, overlapped, memberships)
	}

	// A predicate selecting nothing counts nothing.
	covered, overlapped, memberships = ix.CoverageCounts(func(int32) bool { return false })
	if covered != 0 || overlapped != 0 || memberships != 0 {
		t.Errorf("empty selection: (%d, %d, %d), want zeros", covered, overlapped, memberships)
	}
}
