package graph

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestEdgeListRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(40)
		b := NewBuilder(n)
		for i := 0; i < 3*n; i++ {
			b.AddEdge(int32(rng.Intn(n)), int32(rng.Intn(n)))
		}
		g := b.Build()
		var buf bytes.Buffer
		if err := WriteEdgeList(&buf, g); err != nil {
			return false
		}
		g2, err := ReadEdgeList(&buf)
		if err != nil {
			return false
		}
		if g2.N() != g.N() || g2.M() != g.M() {
			return false
		}
		equal := true
		g.Edges(func(u, v int32) bool {
			if !g2.HasEdge(u, v) {
				equal = false
				return false
			}
			return true
		})
		return equal
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestReadEdgeListNoHeader(t *testing.T) {
	g, err := ReadEdgeList(strings.NewReader("0 1\n1 2\n\n# a comment\n2 3\n"))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 4 || g.M() != 3 {
		t.Fatalf("n=%d m=%d, want 4,3", g.N(), g.M())
	}
}

func TestReadEdgeListHeaderIsolatedNodes(t *testing.T) {
	// Header declares more nodes than appear in edges.
	g, err := ReadEdgeList(strings.NewReader("# nodes 10 edges 1\n0 1\n"))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 10 || g.M() != 1 {
		t.Fatalf("n=%d m=%d, want 10,1", g.N(), g.M())
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	cases := []string{
		"0\n",              // too few fields
		"a b\n",            // non-numeric
		"0 -1\n",           // negative id
		"# nodes 2\n0 5\n", // header parse fails silently; 0 5 beyond... (valid: n inferred)
	}
	for i, in := range cases[:3] {
		if _, err := ReadEdgeList(strings.NewReader(in)); err == nil {
			t.Fatalf("case %d (%q): expected error", i, in)
		}
	}
	// Declared node count smaller than max id must error.
	if _, err := ReadEdgeList(strings.NewReader("# nodes 2 edges 1\n0 5\n")); err == nil {
		t.Fatal("expected error for id exceeding declared node count")
	}
}

func TestWriteEdgeListEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, NewBuilder(3).Build()); err != nil {
		t.Fatal(err)
	}
	g, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 || g.M() != 0 {
		t.Fatalf("n=%d m=%d, want 3,0", g.N(), g.M())
	}
}

// TestReadEdgeListNeverPanics feeds random junk to the parser; it must
// return (graph or error), never panic.
func TestReadEdgeListNeverPanics(t *testing.T) {
	f := func(junk []byte) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("parser panicked on %q: %v", junk, r)
			}
		}()
		_, _ = ReadEdgeList(bytes.NewReader(junk))
		_, _ = ReadBinary(bytes.NewReader(junk))
		_, _ = ReadAuto(bytes.NewReader(junk))
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestReadEdgeListLimits(t *testing.T) {
	lim := ReadLimits{MaxNodes: 100, MaxEdges: 2}
	if _, err := ReadEdgeListLimits(strings.NewReader("# nodes 101 edges 0\n"), lim); err == nil {
		t.Error("declared node count over limit accepted")
	}
	if _, err := ReadEdgeListLimits(strings.NewReader("0 100\n"), lim); err == nil {
		t.Error("node id over limit accepted")
	}
	if _, err := ReadEdgeListLimits(strings.NewReader("0 1\n1 2\n2 3\n"), lim); err == nil {
		t.Error("edge count over limit accepted")
	}
	g, err := ReadEdgeListLimits(strings.NewReader("0 1\n1 2\n"), lim)
	if err != nil {
		t.Fatalf("in-limit graph rejected: %v", err)
	}
	if g.N() != 3 || g.M() != 2 {
		t.Errorf("got n=%d m=%d, want 3, 2", g.N(), g.M())
	}
}
