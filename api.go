package repro

import (
	"io"

	"repro/internal/core"
	"repro/internal/cover"
	"repro/internal/cpm"
	"repro/internal/daisy"
	"repro/internal/graph"
	"repro/internal/hierarchy"
	"repro/internal/index"
	"repro/internal/lfk"
	"repro/internal/lfr"
	"repro/internal/metrics"
	"repro/internal/postprocess"
	"repro/internal/shard"
	"repro/internal/spectral"
	"repro/internal/summarize"
	"repro/internal/synth"
)

// Graph is an immutable simple undirected graph in CSR form. Build one
// with NewGraphBuilder or ReadGraph, or generate one with the benchmark
// generators below.
type Graph = graph.Graph

// GraphBuilder accumulates edges and produces an immutable Graph;
// duplicate edges and self loops are dropped at Build time.
type GraphBuilder = graph.Builder

// NewGraphBuilder returns a builder for a graph on n nodes (ids 0..n-1).
func NewGraphBuilder(n int) *GraphBuilder { return graph.NewBuilder(n) }

// GraphStats summarizes a graph (degrees, components, optional triangle
// count).
type GraphStats = graph.Stats

// Stats computes summary statistics of g. Triangle counting costs
// O(m^1.5) and is optional.
func Stats(g *Graph, countTriangles bool) GraphStats {
	return graph.ComputeStats(g, countTriangles)
}

// ReadGraph parses a text edge list (one "u v" pair per line, optional
// "# nodes N edges M" header).
func ReadGraph(r io.Reader) (*Graph, error) { return graph.ReadEdgeList(r) }

// GraphReadLimits bound what a parse may materialize (node and edge
// counts); use them when reading untrusted input, where a few bytes can
// declare a multi-gigabyte graph.
type GraphReadLimits = graph.ReadLimits

// ReadGraphLimits is ReadGraph with hard caps on the declared or
// implied graph size.
func ReadGraphLimits(r io.Reader, lim GraphReadLimits) (*Graph, error) {
	return graph.ReadEdgeListLimits(r, lim)
}

// GraphDelta accumulates edge additions and removals against an
// existing immutable Graph and applies them in one copy-on-write pass —
// the O(n + m + Δ log Δ) rebuild path behind live cover refresh. The
// base graph is never mutated. GrowTo lets the delta extend the node
// set, the path behind serving graphs that keep gaining nodes.
type GraphDelta = graph.Delta

// NewGraphDelta returns an empty delta over g.
func NewGraphDelta(g *Graph) *GraphDelta { return graph.NewDelta(g) }

// ShardPiece is one node-disjoint piece of a partitioned graph: the
// nodes assigned to that shard (global id ≡ shard mod K) plus a ghost
// halo of their cross-shard neighbors, renumbered to a dense local id
// space with a local→global translation table. Because the halo is the
// full induced subgraph on owned ∪ ghost nodes, a community search
// seeded at an owned node sees its complete boundary neighborhood —
// the partitioning behind the ocad daemon's -shards mode.
type ShardPiece = shard.Piece

// PartitionGraph deterministically splits g into k node-disjoint
// pieces under the modulo-k partition, each with its ghost halo.
func PartitionGraph(g *Graph, k int) ([]ShardPiece, error) {
	return shard.Split(g, k)
}

// WriteGraph writes g in the format ReadGraph parses.
func WriteGraph(w io.Writer, g *Graph) error { return graph.WriteEdgeList(w, g) }

// Community is a sorted set of node ids.
type Community = cover.Community

// Cover is a family of (possibly overlapping) communities.
type Cover = cover.Cover

// NewCommunity copies, sorts and deduplicates the given members.
func NewCommunity(members []int32) Community { return cover.NewCommunity(members) }

// ReadCover parses a community file (one community per line, members as
// space-separated node ids).
func ReadCover(r io.Reader) (*Cover, error) { return cover.Read(r) }

// CommunityQuality summarizes one community's structural quality
// (density, conductance, internal degree, local mixing).
type CommunityQuality = cover.Quality

// AnalyzeCommunity computes structural quality measures of c in g.
func AnalyzeCommunity(g *Graph, c Community) CommunityQuality {
	return cover.Analyze(g, c)
}

// AnalyzeCover computes structural quality measures for every community.
func AnalyzeCover(g *Graph, cv *Cover) []CommunityQuality {
	return cover.AnalyzeCover(g, cv)
}

// NodeCommunityIndex is an immutable inverted node→community index over
// a Cover: the serving-side answer to the paper's titular query, "which
// communities does this node belong to?". Built once per cover
// (CSR-style flat slices), it answers lookups in O(memberships of the
// node) and is safe for any number of concurrent readers. The ocad
// query daemon serves its membership endpoint through this index.
type NodeCommunityIndex = index.Membership

// Index builds the inverted node→community index for cv over a graph
// with n nodes.
func Index(cv *Cover, n int) *NodeCommunityIndex { return index.Build(cv, n) }

// Lookup returns the ascending community indices containing v, as a
// read-only view. Equivalent to ix.Communities(v).
func Lookup(ix *NodeCommunityIndex, v int32) []int32 { return ix.Communities(v) }

// DOTOptions configure WriteDOT.
type DOTOptions = cover.DOTOptions

// WriteDOT renders the graph and its communities as a Graphviz dot
// document (community colors, double periphery on overlap nodes) — the
// repository's way of drawing the paper's Figure 4 pictures.
func WriteDOT(w io.Writer, g *Graph, cv *Cover, opt DOTOptions) error {
	return cover.WriteDOT(w, g, cv, opt)
}

// WriteCover writes cv in the format ReadCover parses.
func WriteCover(w io.Writer, cv *Cover) error { return cover.Write(w, cv) }

// OCAOptions configure OCA; the zero value gives the paper's defaults.
type OCAOptions = core.Options

// OCAHalting is the cross-seed stopping policy of OCA.
type OCAHalting = core.Halting

// OCAResult is the outcome of an OCA run.
type OCAResult = core.Result

// SpectralOptions tune the power iterations computing c = -1/λmin.
type SpectralOptions = spectral.Options

// OCA runs the paper's Overlapping Community Search on g.
func OCA(g *Graph, opt OCAOptions) (*OCAResult, error) { return core.Run(g, opt) }

// Fitness evaluates the paper's directed-Laplacian fitness L for a set
// of s nodes spanning m internal edges under inner-product parameter c.
func Fitness(s int, m int64, c float64) float64 { return core.L(s, m, c) }

// LambdaMin estimates the most negative adjacency eigenvalue of g.
func LambdaMin(g *Graph, opt SpectralOptions) (float64, error) {
	return spectral.LambdaMin(g, opt)
}

// CParameter returns the paper's inner-product parameter c = -1/λmin,
// clamped to (0, 0.999].
func CParameter(g *Graph, opt SpectralOptions) (float64, error) {
	return spectral.C(g, opt)
}

// LFKOptions configure the LFK baseline.
type LFKOptions = lfk.Options

// LFKResult is the outcome of an LFK run.
type LFKResult = lfk.Result

// LFK runs the Lancichinetti–Fortunato–Kertész baseline on g.
func LFK(g *Graph, opt LFKOptions) (*LFKResult, error) { return lfk.Run(g, opt) }

// CPMOptions configure k-clique percolation.
type CPMOptions = cpm.Options

// CPMResult is the outcome of a CPM/CFinder run.
type CPMResult = cpm.Result

// CPM runs k-clique percolation (fast formulation) on g.
func CPM(g *Graph, opt CPMOptions) (*CPMResult, error) { return cpm.Run(g, opt) }

// CFinder runs the CFinder-style pipeline (maximal cliques + quadratic
// overlap percolation). Identical output to CPM, but with the cost
// profile of the original tool; use CPM unless reproducing timings.
func CFinder(g *Graph, opt CPMOptions) (*CPMResult, error) { return cpm.RunCFinder(g, opt) }

// Rho is the paper's community similarity (eq. V.1), equal to the
// Jaccard index of the member sets. Total over all inputs: nil and
// empty communities are interchangeable, two empty sets score 1, an
// empty set against a non-empty one scores 0 — never NaN.
func Rho(c, d Community) float64 { return metrics.Rho(c, d) }

// Theta is the paper's community-structure suitability (eq. V.2) of the
// observed cover with respect to the reference cover.
func Theta(ref, obs *Cover) float64 { return metrics.Theta(ref, obs) }

// BestMatchF1 is the symmetric average best-match F1 between two covers.
func BestMatchF1(a, b *Cover) float64 { return metrics.BestMatchF1(a, b) }

// OmegaIndex is the chance-corrected pairwise co-membership agreement of
// two covers over n nodes (overlap-aware; O(n²) pairs).
func OmegaIndex(a, b *Cover, n int) float64 { return metrics.OmegaIndex(a, b, n) }

// NMI is the overlapping Normalized Mutual Information (Lancichinetti–
// Fortunato–Kertész 2009) of two covers over n nodes: 1 for identical
// covers, 0 for independent ones. The standard score for comparing
// covers whose communities may overlap.
func NMI(a, b *Cover, n int) float64 { return metrics.NMI(a, b, n) }

// MergeThreshold is the default ρ at which communities merge.
const MergeThreshold = postprocess.DefaultMergeThreshold

// MergeCommunities repeatedly unions communities with ρ ≥ threshold
// (Section IV's "too similar" post-processing).
func MergeCommunities(cv *Cover, threshold float64) *Cover {
	return postprocess.Merge(cv, threshold)
}

// OrphanOptions configure AssignOrphans.
type OrphanOptions = postprocess.OrphanOptions

// AssignOrphans adds every uncovered node of g to the community holding
// most of its neighbors (Section IV's orphan rule).
func AssignOrphans(g *Graph, cv *Cover, opt OrphanOptions) *Cover {
	return postprocess.AssignOrphans(g, cv, opt)
}

// LFRParams configure the LFR benchmark generator.
type LFRParams = lfr.Params

// LFRBenchmark is a generated LFR instance with its planted communities.
type LFRBenchmark = lfr.Benchmark

// GenerateLFR builds an LFR benchmark graph with ground truth.
func GenerateLFR(p LFRParams) (*LFRBenchmark, error) { return lfr.Generate(p) }

// MeasureMixing returns the realized mixing parameter of a generated
// instance (fraction of edge endpoints leaving all their communities).
func MeasureMixing(g *Graph, memberships [][]int32) float64 {
	return lfr.MeasureMixing(g, memberships)
}

// DaisyParams describe one daisy flower of the paper's overlapping
// benchmark.
type DaisyParams = daisy.Params

// DaisyTreeParams describe a daisy tree.
type DaisyTreeParams = daisy.TreeParams

// DaisyBenchmark is a generated daisy tree with its planted communities.
type DaisyBenchmark = daisy.Benchmark

// GenerateDaisyTree builds a daisy tree benchmark.
func GenerateDaisyTree(tp DaisyTreeParams) (*DaisyBenchmark, error) {
	return daisy.Generate(tp)
}

// DefaultDaisyParams returns the harness defaults for daisy flowers.
func DefaultDaisyParams() DaisyParams { return daisy.DefaultParams() }

// GenerateBarabasiAlbert builds a preferential-attachment graph with n
// nodes and m edges per arriving node.
func GenerateBarabasiAlbert(n, m int, seed int64) (*Graph, error) {
	return synth.BarabasiAlbert(n, m, seed)
}

// GenerateGNM builds a uniform random simple graph with exactly m edges.
func GenerateGNM(n int, m int64, seed int64) (*Graph, error) {
	return synth.GNM(n, m, seed)
}

// RMATParams configure the R-MAT generator.
type RMATParams = synth.RMATParams

// GenerateRMAT builds an R-MAT graph (2^Scale nodes).
func GenerateRMAT(p RMATParams) (*Graph, error) { return synth.RMAT(p) }

// GenerateWikipediaLike builds the Table-I Wikipedia substitute: a
// heavy-tailed graph with planted overlapping communities matching the
// paper's edge/node ratio (see DESIGN.md §3.6).
func GenerateWikipediaLike(scale int, seed int64) (*Graph, error) {
	return synth.WikipediaLike(scale, seed)
}

// HierarchyOptions configure BuildHierarchy.
type HierarchyOptions = hierarchy.Options

// HierarchyLevel is one layer of a community hierarchy.
type HierarchyLevel = hierarchy.Level

// BuildHierarchy implements the paper's §VI future work: it relates the
// communities of a cover through their cross edges and shared members,
// then reapplies OCA on the quotient graph, yielding successively
// coarser community levels (level 0 is the input cover).
func BuildHierarchy(g *Graph, base *Cover, opt HierarchyOptions) ([]HierarchyLevel, error) {
	return hierarchy.Build(g, base, opt)
}

// GraphSummary is a lossless community-based compression of a graph
// (the paper's §VI "graph summarization" future work).
type GraphSummary = summarize.Summary

// Summarize compresses g under the given community cover; the result
// reconstructs g exactly via ReconstructGraph.
func Summarize(g *Graph, cv *Cover) (*GraphSummary, error) {
	return summarize.Build(g, cv)
}

// ReconstructGraph rebuilds the exact original graph from a summary.
func ReconstructGraph(s *GraphSummary) *Graph { return summarize.Reconstruct(s) }
