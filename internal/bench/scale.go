package bench

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/synth"
	"repro/internal/xrand"
)

// RunScale measures OCA alone on growing Wikipedia-like graphs — the
// abstract's scalability claim ("efficiently handles large graphs
// containing more than 10⁸ nodes and edges") probed as far as this
// machine allows. Reports seconds and edges/second per size.
func RunScale(cfg Config) (*Figure, error) {
	cfg = cfg.withDefaults()
	scales := []int{13, 14, 15, 16}
	if cfg.Full {
		scales = []int{15, 16, 17, 18, 19, 20}
	}
	if len(cfg.ScaleScales) > 0 {
		scales = cfg.ScaleScales
	}
	fig := &Figure{
		ID: "scale", Title: "OCA scalability on Wikipedia-like graphs",
		XLabel: "nodes", YLabel: "seconds / edges-per-second",
		Note: fmt.Sprintf("workers=%d; graph = heavy-tailed LFR substitute; extension beyond the paper's Fig. 5", cfg.Workers),
	}
	var secs, eps []float64
	for _, scale := range scales {
		g, err := synth.WikipediaLike(scale, xrand.Derive(cfg.Seed, int64(15000+scale)))
		if err != nil {
			return nil, fmt.Errorf("scale 2^%d: %w", scale, err)
		}
		start := time.Now()
		res, err := core.Run(g, core.Options{
			Seed:    xrand.Derive(cfg.Seed, int64(15100+scale)),
			Workers: cfg.Workers,
			Halting: core.Halting{TargetCoverage: 0.8, Patience: 100},
		})
		if err != nil {
			return nil, fmt.Errorf("scale 2^%d: %w", scale, err)
		}
		elapsed := time.Since(start)
		fig.X = append(fig.X, float64(g.N()))
		secs = append(secs, elapsed.Seconds())
		eps = append(eps, float64(g.M())/elapsed.Seconds())
		cfg.logf("scale: 2^%d n=%d m=%d %.2fs %.0f edges/s communities=%d",
			scale, g.N(), g.M(), elapsed.Seconds(), eps[len(eps)-1], res.Cover.Len())
	}
	fig.Series = []Series{
		{Name: "seconds", Y: secs},
		{Name: "edges/s", Y: eps},
	}
	return fig, nil
}
