package graph

import (
	"bytes"
	"math/rand"
	"testing"
)

func randomBenchGraph(b *testing.B, n, avgDeg int) *Graph {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	bld := NewBuilderHint(n, int64(n*avgDeg/2))
	for i := 0; i < n*avgDeg/2; i++ {
		bld.AddEdge(int32(rng.Intn(n)), int32(rng.Intn(n)))
	}
	return bld.Build()
}

// BenchmarkBuild measures CSR construction (sort + dedup + symmetrize).
func BenchmarkBuild(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	n := 10000
	edges := make([][2]int32, n*10)
	for i := range edges {
		edges[i] = [2]int32{int32(rng.Intn(n)), int32(rng.Intn(n))}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FromEdges(n, edges)
	}
}

// BenchmarkTriangleCount measures the forward algorithm.
func BenchmarkTriangleCount(b *testing.B) {
	g := randomBenchGraph(b, 5000, 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		CountTriangles(g)
	}
}

// BenchmarkBinaryVsTextIO compares the two serializations.
func BenchmarkBinaryWrite(b *testing.B) {
	g := randomBenchGraph(b, 5000, 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := WriteBinary(&buf, g); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTextWrite(b *testing.B) {
	g := randomBenchGraph(b, 5000, 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := WriteEdgeList(&buf, g); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBinaryRead(b *testing.B) {
	g := randomBenchGraph(b, 5000, 20)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ReadBinary(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHasEdge measures the binary-search membership query.
func BenchmarkHasEdge(b *testing.B) {
	g := randomBenchGraph(b, 5000, 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.HasEdge(int32(i%5000), int32((i*7)%5000))
	}
}
