// Command ocad is the community-search query daemon: it loads a graph,
// obtains an overlapping community cover (by running OCA or loading a
// precomputed cover file), builds the inverted node→community index,
// and serves JSON over HTTP until terminated. Edge mutations posted at
// runtime are applied by a background refresh worker that re-runs OCA
// and atomically swaps in the new generation; readers never block.
//
// With -shards K the graph and its cover are partitioned across K
// node-disjoint shards (modulo-K node assignment, ghost halos for
// boundary neighborhoods), each kept live by its own refresh worker; a
// router fans lookups out to the owning shards and every response
// quotes a (shard, generation) vector so clients can detect a lagging
// shard.
//
// Usage:
//
//	ocad -in graph.txt [-addr :8080] [-shards K] [flags]
//
// Endpoints:
//
//	GET  /healthz                    liveness, refresh state, per-shard vector, request summary
//	GET  /v1/cover/stats             cover-wide overlap statistics (+ per-shard c)
//	GET  /v1/cover/export            NDJSON streaming bulk export
//	GET  /v1/node/{id}/communities   which communities contain this node
//	POST /v1/nodes/communities       batch lookup fanned out to the owning shards
//	POST /v1/search                  run one seeded community search
//	POST /v1/edges                   add/remove edges (may grow the node set), triggering refreshes
//	GET  /debug/metrics              per-endpoint request counts + latency histograms
//
// The daemon shuts down gracefully on SIGINT/SIGTERM, draining
// in-flight requests for up to -shutdown-timeout.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cover"
	"repro/internal/graph"
	"repro/internal/server"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ocad:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	// ContinueOnError keeps parse failures on run()'s error-return path
	// (ExitOnError would os.Exit inside Parse, killing test binaries).
	fs := flag.NewFlagSet("ocad", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address")
	in := fs.String("in", "", "input graph (edge list or oca binary format; required)")
	coverPath := fs.String("cover", "", "serve this precomputed cover file instead of running OCA")
	lazy := fs.Bool("lazy", false, "delay the OCA run until the first request that needs the cover")
	seed := fs.Int64("seed", 1, "random seed for the OCA run")
	c := fs.Float64("c", 0, "inner-product parameter override (0 = derive -1/λmin from the spectrum)")
	workers := fs.Int("workers", 0, "OCA worker goroutines (0 = GOMAXPROCS)")
	searchWorkers := fs.Int("search-workers", 0, "max concurrent /v1/search searches (0 = GOMAXPROCS)")
	reqTimeout := fs.Duration("request-timeout", 30*time.Second, "per-request deadline")
	shutdownTimeout := fs.Duration("shutdown-timeout", 10*time.Second, "graceful shutdown drain budget")
	refreshDebounce := fs.Duration("refresh-debounce", 50*time.Millisecond, "how long queued /v1/edges mutations coalesce before an OCA re-run")
	maxBatchIDs := fs.Int("max-batch-ids", 10000, "ids answered per batch lookup before clamping")
	coldRefresh := fs.Bool("cold-refresh", false, "re-run OCA from scratch on refresh instead of warm-starting from unaffected communities")
	shards := fs.Int("shards", 1, "partition the graph and cover across K node-disjoint shards behind a fan-out router")
	maxNodes := fs.Int("max-nodes", -1, "max node-set size /v1/edges growth may reach (-1 = 8x the initial graph, 0 = fixed node set)")
	rederiveC := fs.Float64("rederive-c", 0.25, "re-derive c=-1/λmin during a rebuild once applied mutations exceed this fraction of the graph's edges (0 = pin the startup value; ignored when -c is set)")
	incrementalThreshold := fs.Float64("incremental-threshold", 0.25, "rebuild incrementally (dirty-region scoped OCA, patched index) when a mutation batch touches at most this fraction of the served communities; batches touching none skip OCA entirely (0 = always rebuild fully)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		fs.Usage()
		return errors.New("missing required -in graph file")
	}
	if *shards < 1 {
		return fmt.Errorf("-shards %d must be at least 1", *shards)
	}
	if *shards > 1 && *coverPath != "" {
		return errors.New("-cover is not supported with -shards > 1 (precomputed covers cannot be partitioned)")
	}
	if *shards > 1 && *lazy {
		return errors.New("-lazy is not supported with -shards > 1 (every shard's cover is built at startup)")
	}
	// Normalize here so the handler deadline and http.Server's
	// WriteTimeout are derived from the same value (server.Config also
	// defaults non-positive timeouts to 30s).
	if *reqTimeout <= 0 {
		*reqTimeout = 30 * time.Second
	}

	g, err := loadGraph(*in)
	if err != nil {
		return err
	}
	log.Printf("loaded graph: %d nodes, %d edges", g.N(), g.M())

	cfg := server.Config{
		Lazy:                 *lazy,
		SearchWorkers:        *searchWorkers,
		RequestTimeout:       *reqTimeout,
		RefreshDebounce:      *refreshDebounce,
		MaxBatchIDs:          *maxBatchIDs,
		DisableWarmStart:     *coldRefresh,
		Shards:               *shards,
		MaxNodes:             resolveMaxNodes(*maxNodes, g.N()),
		RederiveCAfter:       *rederiveC,
		IncrementalThreshold: *incrementalThreshold,
	}
	cfg.OCA.Seed = *seed
	cfg.OCA.C = *c
	cfg.OCA.Workers = *workers

	var srv *server.Server
	if *coverPath != "" {
		cv, err := loadCover(*coverPath)
		if err != nil {
			return err
		}
		log.Printf("loaded cover: %d communities", cv.Len())
		srv, err = server.NewWithCover(g, cv, cfg)
		if err != nil {
			return err
		}
	} else if *shards > 1 {
		log.Printf("running OCA across %d shards (seed %d)...", *shards, *seed)
		start := time.Now()
		srv, err = server.New(g, cfg)
		if err != nil {
			return err
		}
		log.Printf("%d shard covers ready in %v", *shards, time.Since(start).Round(time.Millisecond))
	} else {
		if !*lazy {
			log.Printf("running OCA (seed %d)...", *seed)
		}
		start := time.Now()
		srv, err = server.New(g, cfg)
		if err != nil {
			return err
		}
		if !*lazy {
			cv, err := srv.Cover()
			if err != nil {
				return err
			}
			log.Printf("cover ready: %d communities in %v", cv.Len(), time.Since(start).Round(time.Millisecond))
		}
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		// WriteTimeout backs up the handler-level deadline with slack
		// for response transmission.
		WriteTimeout: *reqTimeout + 10*time.Second,
		IdleTimeout:  2 * time.Minute,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() {
		log.Printf("serving on %s", *addr)
		if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			errCh <- err
			return
		}
		errCh <- nil
	}()

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	log.Print("shutting down, draining in-flight requests...")
	// Stop the refresh worker first: new mutations are refused while
	// in-flight reads keep answering from the last published snapshot.
	srv.Close()
	drainCtx, cancel := context.WithTimeout(context.Background(), *shutdownTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	log.Print("bye")
	return <-errCh
}

// resolveMaxNodes turns the -max-nodes flag into a concrete cap:
// negative means "auto" (8x the initial graph, so growth works out of
// the box without being unbounded), 0 keeps the node set fixed, and a
// positive value is used as-is.
func resolveMaxNodes(flagVal, n int) int {
	if flagVal >= 0 {
		return flagVal
	}
	return 8 * n
}

func loadGraph(path string) (*graph.Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	g, err := graph.ReadAuto(f)
	if err != nil {
		return nil, fmt.Errorf("reading graph %s: %w", path, err)
	}
	return g, nil
}

func loadCover(path string) (*cover.Cover, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	cv, err := cover.Read(f)
	if err != nil {
		return nil, fmt.Errorf("reading cover %s: %w", path, err)
	}
	return cv, nil
}
