package persist

import (
	"fmt"
	"os"
	"reflect"
	"strings"
	"testing"

	"repro/internal/wal"
)

// linesFromDoc extracts the non-empty lines of the fenced block
// following the given marker comment in docs/PERSISTENCE.md.
func linesFromDoc(t *testing.T, doc, marker string) []string {
	t.Helper()
	_, after, found := strings.Cut(doc, marker)
	if !found {
		t.Fatalf("docs/PERSISTENCE.md: marker %q missing", marker)
	}
	_, after, found = strings.Cut(after, "```")
	if !found {
		t.Fatalf("docs/PERSISTENCE.md: no fenced block after %q", marker)
	}
	block, _, found := strings.Cut(after, "```")
	if !found {
		t.Fatalf("docs/PERSISTENCE.md: unterminated fenced block after %q", marker)
	}
	var lines []string
	for _, line := range strings.Split(block, "\n") {
		if line = strings.TrimSpace(line); line != "" {
			lines = append(lines, line)
		}
	}
	return lines
}

// TestPersistenceDocSync is the documentation lint: the normative
// constants in docs/PERSISTENCE.md (magics, format versions, record
// types, section tags, file-name patterns) must equal the ones the
// code ships. Changing the on-disk format without updating the spec —
// or vice versa — fails here.
func TestPersistenceDocSync(t *testing.T) {
	raw, err := os.ReadFile("../../docs/PERSISTENCE.md")
	if err != nil {
		t.Fatalf("reading docs/PERSISTENCE.md: %v", err)
	}
	doc := string(raw)

	for _, tc := range []struct {
		marker string
		want   []string
	}{
		{"<!-- persist:magics -->", []string{
			fmt.Sprintf("%s %d", wal.MagicLog[:], wal.VersionLog),
			fmt.Sprintf("%s %d", MagicSegment[:], VersionSegment),
		}},
		{"<!-- persist:records -->", []string{
			fmt.Sprintf("%d edge-batch", wal.RecEdgeBatch),
			fmt.Sprintf("%d publish", wal.RecPublish),
		}},
		{"<!-- persist:sections -->", []string{
			string(SecMeta[:]), string(SecGraph[:]), string(SecCover[:]),
			string(SecTable[:]), string(SecEnd[:]),
		}},
		{"<!-- persist:filenames -->", []string{
			SegmentPattern,
			WALPattern,
		}},
	} {
		if got := linesFromDoc(t, doc, tc.marker); !reflect.DeepEqual(got, tc.want) {
			t.Errorf("%s: doc lists %q, code ships %q", tc.marker, got, tc.want)
		}
	}

	// The prose states the parser limits; keep the numbers honest too.
	for _, want := range []string{"16 MiB", "1<<24", "2^36"} {
		if !strings.Contains(doc, want) {
			t.Errorf("docs/PERSISTENCE.md: parser limit %q no longer mentioned", want)
		}
	}
}
