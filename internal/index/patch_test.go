package index

import (
	"math/rand"
	"testing"

	"repro/internal/cover"
)

// patchedCover applies the Patch contract to a cover: survivors in
// previous order, added communities appended.
func patchedCover(prev *cover.Cover, removed []bool, added []cover.Community) *cover.Cover {
	var out []cover.Community
	for ci, c := range prev.Communities {
		if !removed[ci] {
			out = append(out, c)
		}
	}
	out = append(out, added...)
	return cover.NewCover(out)
}

func assertSameIndex(t *testing.T, got, want *Membership, n int) {
	t.Helper()
	if got.N() != want.N() || got.NumCommunities() != want.NumCommunities() || got.Memberships() != want.Memberships() {
		t.Fatalf("dimensions: got (n=%d, k=%d, m=%d), want (n=%d, k=%d, m=%d)",
			got.N(), got.NumCommunities(), got.Memberships(), want.N(), want.NumCommunities(), want.Memberships())
	}
	for v := int32(0); int(v) < n; v++ {
		g, w := got.Communities(v), want.Communities(v)
		if len(g) != len(w) {
			t.Fatalf("node %d: got %v, want %v", v, g, w)
		}
		for i := range g {
			if g[i] != w[i] {
				t.Fatalf("node %d: got %v, want %v", v, g, w)
			}
		}
	}
}

func TestPatchMatchesBuildRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		n := 30 + rng.Intn(100)
		var cs []cover.Community
		for i := 0; i < 2+rng.Intn(10); i++ {
			members := make([]int32, 3+rng.Intn(12))
			for j := range members {
				members[j] = int32(rng.Intn(n))
			}
			cs = append(cs, cover.NewCommunity(members))
		}
		prevCv := cover.NewCover(cs)
		prev := Build(prevCv, n)

		removed := make([]bool, len(cs))
		for i := range removed {
			removed[i] = rng.Intn(3) == 0
		}
		var added []cover.Community
		for i := 0; i < rng.Intn(4); i++ {
			members := make([]int32, 3+rng.Intn(12))
			for j := range members {
				members[j] = int32(rng.Intn(n))
			}
			added = append(added, cover.NewCommunity(members))
		}
		newN := n + rng.Intn(20)

		got := Patch(prev, removed, added, newN)
		want := Build(patchedCover(prevCv, removed, added), newN)
		assertSameIndex(t, got, want, newN)
	}
}

// TestPermuteMatchesBuildRandomized: permuting an index must equal
// building from the permuted cover, across random covers and random
// permutations (including the identity, which returns prev itself).
func TestPermuteMatchesBuildRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		n := 30 + rng.Intn(100)
		var cs []cover.Community
		for i := 0; i < 1+rng.Intn(10); i++ {
			members := make([]int32, 3+rng.Intn(12))
			for j := range members {
				members[j] = int32(rng.Intn(n))
			}
			cs = append(cs, cover.NewCommunity(members))
		}
		cv := cover.NewCover(cs)
		prev := Build(cv, n)

		perm := rng.Perm(len(cs))
		perm32 := make([]int32, len(perm))
		identity := true
		for i, p := range perm {
			perm32[i] = int32(p)
			if i != p {
				identity = false
			}
		}
		got := Permute(prev, perm32)
		if identity && got != prev {
			t.Fatal("identity permutation should return prev itself")
		}
		permuted := make([]cover.Community, len(cs))
		for i, c := range cv.Communities {
			permuted[perm32[i]] = c
		}
		want := Build(cover.NewCover(permuted), n)
		assertSameIndex(t, got, want, n)
	}
}

func TestPermutePanicsOnBadLength(t *testing.T) {
	cv := cover.NewCover([]cover.Community{
		cover.NewCommunity([]int32{0, 1, 2}),
		cover.NewCommunity([]int32{1, 3}),
	})
	prev := Build(cv, 4)
	assertPanics(t, "short perm", func() { Permute(prev, []int32{0}) })
}

func TestPatchPureGrowthSharesMemberships(t *testing.T) {
	cv := cover.NewCover([]cover.Community{
		cover.NewCommunity([]int32{0, 1, 2}),
		cover.NewCommunity([]int32{2, 3}),
	})
	prev := Build(cv, 5)
	if got := Patch(prev, nil, nil, 5); got != prev {
		t.Fatal("no-op patch should return prev itself")
	}
	grown := Patch(prev, nil, nil, 9)
	if grown.N() != 9 {
		t.Fatalf("grown index has %d nodes, want 9", grown.N())
	}
	if &grown.comms[0] != &prev.comms[0] {
		t.Fatal("pure growth should share the membership array")
	}
	for v := int32(5); v < 9; v++ {
		if grown.Covered(v) {
			t.Fatalf("grown node %d reported covered", v)
		}
	}
	// All-false removed flags are still a pure growth.
	grown2 := Patch(prev, make([]bool, prev.NumCommunities()), nil, 9)
	if &grown2.comms[0] != &prev.comms[0] {
		t.Fatal("all-false removal flags should still share the membership array")
	}
}

func TestPatchPanicsOnBadArguments(t *testing.T) {
	cv := cover.NewCover([]cover.Community{cover.NewCommunity([]int32{0, 1, 2})})
	prev := Build(cv, 4)
	assertPanics(t, "short removed", func() { Patch(prev, []bool{true, false}, nil, 4) })
	assertPanics(t, "shrinking n", func() { Patch(prev, nil, nil, 3) })
}

func assertPanics(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s: expected panic", name)
		}
	}()
	f()
}

func BenchmarkPatchVsBuild(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	const n = 50000
	var cs []cover.Community
	for i := 0; i < 800; i++ {
		members := make([]int32, 40+rng.Intn(40))
		for j := range members {
			members[j] = int32(rng.Intn(n))
		}
		cs = append(cs, cover.NewCommunity(members))
	}
	prevCv := cover.NewCover(cs)
	prev := Build(prevCv, n)
	removed := make([]bool, len(cs))
	removed[3], removed[77] = true, true
	added := []cover.Community{cs[3], cs[77]}

	b.Run("Patch", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			Patch(prev, removed, added, n)
		}
	})
	b.Run("Build", func(b *testing.B) {
		target := patchedCover(prevCv, removed, added)
		for i := 0; i < b.N; i++ {
			Build(target, n)
		}
	})
}
