package refresh

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
)

// twoCliques builds two K_6 cliques sharing nodes 4 and 5.
func twoCliques() *graph.Graph {
	b := graph.NewBuilder(10)
	for i := int32(0); i < 6; i++ {
		for j := i + 1; j < 6; j++ {
			b.AddEdge(i, j)
		}
	}
	for i := int32(4); i < 10; i++ {
		for j := i + 1; j < 10; j++ {
			b.AddEdge(i, j)
		}
	}
	return b.Build()
}

func testSnapshot(t testing.TB, g *graph.Graph, opt core.Options) *Snapshot {
	t.Helper()
	res, err := core.Run(g, opt)
	if err != nil {
		t.Fatalf("core.Run: %v", err)
	}
	return NewSnapshot(g, res.Cover, res, res.C, 0)
}

func newTestWorker(t testing.TB, cfg Config) *Worker {
	t.Helper()
	if cfg.OCA.C == 0 {
		cfg.OCA = core.Options{Seed: 1, C: 0.5}
	}
	if cfg.Debounce == 0 {
		cfg.Debounce = time.Millisecond
	}
	w := New(testSnapshot(t, twoCliques(), cfg.OCA), cfg)
	w.Start()
	t.Cleanup(w.Close)
	return w
}

func TestWorkerRebuildBumpsGeneration(t *testing.T) {
	w := newTestWorker(t, Config{})
	first := w.Snapshot()
	if first.Gen != 1 {
		t.Fatalf("initial generation = %d, want 1", first.Gen)
	}

	gen, queued, err := w.Enqueue([][2]int32{{0, 9}}, nil)
	if err != nil {
		t.Fatalf("Enqueue: %v", err)
	}
	if gen != 1 || queued != 1 {
		t.Fatalf("Enqueue = (gen %d, queued %d), want (1, 1)", gen, queued)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	snap, err := w.Flush(ctx)
	if err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if snap.Gen != 2 {
		t.Errorf("generation after rebuild = %d, want 2", snap.Gen)
	}
	if !snap.Graph.HasEdge(0, 9) {
		t.Error("rebuilt graph is missing the added edge")
	}
	if first.Graph.HasEdge(0, 9) {
		t.Error("rebuild mutated the previous snapshot's graph")
	}
	if snap.Index.N() != snap.Graph.N() || snap.Index.NumCommunities() != snap.Cover.Len() {
		t.Error("snapshot index inconsistent with its cover/graph")
	}
	st := w.Status()
	if st.Gen != 2 || st.Pending != 0 || st.LastErr != "" {
		t.Errorf("status = %+v", st)
	}

	// Removing the edge again produces a third generation without it.
	if _, _, err := w.Enqueue(nil, [][2]int32{{9, 0}}); err != nil {
		t.Fatalf("Enqueue remove: %v", err)
	}
	snap, err = w.Flush(ctx)
	if err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if snap.Gen != 3 || snap.Graph.HasEdge(0, 9) {
		t.Errorf("gen %d, HasEdge(0,9)=%v after removal", snap.Gen, snap.Graph.HasEdge(0, 9))
	}
}

func TestWorkerNoopBatchKeepsGeneration(t *testing.T) {
	w := newTestWorker(t, Config{})
	// Edge {0,1} already exists; edge {0,9} doesn't, so removing it is a
	// no-op too. No new generation should be published.
	if _, _, err := w.Enqueue([][2]int32{{0, 1}}, [][2]int32{{0, 9}}); err != nil {
		t.Fatalf("Enqueue: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	snap, err := w.Flush(ctx)
	if err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if snap.Gen != 1 {
		t.Errorf("no-op batch bumped generation to %d", snap.Gen)
	}
}

func TestEnqueueValidation(t *testing.T) {
	w := newTestWorker(t, Config{})
	cases := []struct {
		name string
		add  [][2]int32
		rm   [][2]int32
	}{
		{"self loop", [][2]int32{{3, 3}}, nil},
		{"negative", [][2]int32{{-1, 2}}, nil},
		{"out of range add", [][2]int32{{0, 10}}, nil},
		{"out of range remove", nil, [][2]int32{{0, 99}}},
		{"valid then invalid", [][2]int32{{0, 9}, {4, 4}}, nil},
	}
	for _, tc := range cases {
		if _, queued, err := w.Enqueue(tc.add, tc.rm); err == nil || queued != 0 {
			t.Errorf("%s: err=%v queued=%d, want rejection of the whole batch", tc.name, err, queued)
		}
	}
	if st := w.Status(); st.Pending != 0 {
		t.Errorf("rejected batches left %d pending ops", st.Pending)
	}
}

func TestEnqueueBacklogFull(t *testing.T) {
	w := newTestWorker(t, Config{MaxPending: 2, Debounce: time.Hour})
	if _, _, err := w.Enqueue([][2]int32{{0, 9}, {1, 9}}, nil); err != nil {
		t.Fatalf("fill backlog: %v", err)
	}
	if _, _, err := w.Enqueue([][2]int32{{2, 9}}, nil); err != ErrBacklogFull {
		t.Errorf("over-full enqueue: err = %v, want ErrBacklogFull", err)
	}
}

func TestWarmStartCarriesUntouchedCommunities(t *testing.T) {
	var mu sync.Mutex
	var swapped []*Snapshot
	w := newTestWorker(t, Config{
		OCA: core.Options{Seed: 1, C: 0.5},
		OnSwap: func(s *Snapshot) {
			mu.Lock()
			swapped = append(swapped, s)
			mu.Unlock()
		},
	})
	// Touch only clique B's exclusive side: the clique-A community
	// (containing nodes 0..3 but not 8, 9) must be carried over.
	if _, _, err := w.Enqueue(nil, [][2]int32{{8, 9}}); err != nil {
		t.Fatalf("Enqueue: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	snap, err := w.Flush(ctx)
	if err != nil {
		t.Fatalf("Flush: %v", err)
	}
	foundA := false
	for _, c := range snap.Cover.Communities {
		if c.Contains(0) && c.Contains(3) {
			foundA = true
		}
	}
	if !foundA {
		t.Errorf("clique-A community lost across a clique-B mutation: %v", snap.Cover.Communities)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(swapped) != 1 || swapped[0].Gen != 2 {
		t.Errorf("OnSwap calls = %v, want one snapshot at generation 2", len(swapped))
	}
}

func TestCloseUnblocksFlushAndRejectsEnqueue(t *testing.T) {
	// Never started: no rebuild can satisfy the Flush, so only Close can
	// release it.
	w := New(testSnapshot(t, twoCliques(), core.Options{Seed: 1, C: 0.5}), Config{})
	if _, _, err := w.Enqueue([][2]int32{{0, 9}}, nil); err != nil {
		t.Fatal(err)
	}
	flushErr := make(chan error, 1)
	go func() {
		_, err := w.Flush(context.Background())
		flushErr <- err
	}()
	time.Sleep(10 * time.Millisecond)
	w.Close()
	select {
	case err := <-flushErr:
		if err != ErrClosed {
			t.Errorf("Flush after Close: err = %v, want ErrClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Flush did not return after Close")
	}
	if _, _, err := w.Enqueue([][2]int32{{1, 9}}, nil); err != ErrClosed {
		t.Errorf("Enqueue after Close: err = %v, want ErrClosed", err)
	}
	if w.Snapshot() == nil {
		t.Error("snapshot unreadable after Close")
	}
}

// TestConcurrentMutatorsAndReaders is the worker-level race test: many
// goroutines enqueue mutations while many more read snapshots, asserting
// every observed snapshot is internally consistent and generations are
// monotone per reader. Run under -race this exercises the atomic swap.
func TestConcurrentMutatorsAndReaders(t *testing.T) {
	w := newTestWorker(t, Config{OCA: core.Options{Seed: 3, C: 0.5}, Debounce: 100 * time.Microsecond})
	const mutators, readers, reps = 4, 8, 100
	var wg sync.WaitGroup
	errs := make(chan error, mutators+readers)

	for m := 0; m < mutators; m++ {
		wg.Add(1)
		go func(m int) {
			defer wg.Done()
			for i := 0; i < reps; i++ {
				// Toggle bridge edges between the cliques' exclusive sides.
				e := [2]int32{int32(m % 4), int32(6 + (i+m)%4)}
				var err error
				if i%2 == 0 {
					_, _, err = w.Enqueue([][2]int32{e}, nil)
				} else {
					_, _, err = w.Enqueue(nil, [][2]int32{e})
				}
				if err != nil {
					errs <- fmt.Errorf("mutator %d: %v", m, err)
					return
				}
			}
		}(m)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			var lastGen uint64
			for i := 0; i < reps; i++ {
				s := w.Snapshot()
				if s.Gen < lastGen {
					errs <- fmt.Errorf("reader %d: generation went backwards: %d after %d", r, s.Gen, lastGen)
					return
				}
				lastGen = s.Gen
				if s.Index.N() != s.Graph.N() {
					errs <- fmt.Errorf("reader %d: index over %d nodes, graph has %d", r, s.Index.N(), s.Graph.N())
					return
				}
				if s.Index.NumCommunities() != s.Cover.Len() || s.Stats.Communities != s.Cover.Len() {
					errs <- fmt.Errorf("reader %d: index/stats communities disagree with cover", r)
					return
				}
				// Spot-check one lookup against the cover it came with.
				for _, ci := range s.Index.Communities(5) {
					if !s.Cover.Communities[ci].Contains(5) {
						errs <- fmt.Errorf("reader %d: index names community %d for node 5, cover disagrees", r, ci)
						return
					}
				}
			}
		}(r)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	// Everything drains to a final consistent state.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	snap, err := w.Flush(ctx)
	if err != nil {
		t.Fatalf("final Flush: %v", err)
	}
	if st := w.Status(); st.Pending != 0 || st.Gen != snap.Gen {
		t.Errorf("post-drain status %+v vs snapshot gen %d", st, snap.Gen)
	}
}

func TestLogBatchGatesAcceptance(t *testing.T) {
	var (
		mu     sync.Mutex
		logged []uint64
		fail   bool
	)
	w := newTestWorker(t, Config{
		LogBatch: func(add, remove [][2]int32, seq uint64) error {
			mu.Lock()
			defer mu.Unlock()
			if fail {
				return fmt.Errorf("disk full")
			}
			logged = append(logged, seq)
			return nil
		},
	})

	if _, _, err := w.Enqueue([][2]int32{{0, 9}}, nil); err != nil {
		t.Fatalf("Enqueue: %v", err)
	}
	snap, err := w.Flush(context.Background())
	if err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if snap.Seq != 1 {
		t.Errorf("snapshot Seq = %d, want 1 (one op applied)", snap.Seq)
	}
	mu.Lock()
	if len(logged) != 1 || logged[0] != 1 {
		t.Errorf("logged seqs = %v, want [1]", logged)
	}
	fail = true
	mu.Unlock()

	// A failing log rejects the batch: accepted and logged must be the
	// same event.
	if _, queued, err := w.Enqueue([][2]int32{{1, 9}}, nil); err == nil || queued != 0 {
		t.Fatalf("Enqueue with failing log: queued %d err %v, want rejection", queued, err)
	}
	mu.Lock()
	fail = false
	mu.Unlock()

	// An invalid batch must never reach the log.
	if _, _, err := w.Enqueue([][2]int32{{3, 3}}, nil); err == nil {
		t.Fatal("self loop accepted")
	}
	mu.Lock()
	if len(logged) != 1 {
		t.Errorf("invalid batch reached the log: %v", logged)
	}
	mu.Unlock()
}

func TestSeqResumesFromInitialSnapshot(t *testing.T) {
	snap := testSnapshot(t, twoCliques(), core.Options{Seed: 1, C: 0.5})
	snap.Seq = 42
	var logged []uint64
	w := New(snap, Config{
		OCA:      core.Options{Seed: 1, C: 0.5},
		Debounce: time.Millisecond,
		LogBatch: func(add, remove [][2]int32, seq uint64) error {
			logged = append(logged, seq) // Enqueue is serial in this test
			return nil
		},
	})
	w.Start()
	defer w.Close()

	if _, _, err := w.Enqueue([][2]int32{{0, 9}, {1, 9}}, nil); err != nil {
		t.Fatalf("Enqueue: %v", err)
	}
	got, err := w.Flush(context.Background())
	if err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if got.Seq != 44 {
		t.Errorf("snapshot Seq = %d, want 44 (42 restored + 2 ops)", got.Seq)
	}
	if len(logged) != 1 || logged[0] != 44 {
		t.Errorf("logged seqs = %v, want [44]", logged)
	}
}
