package lfk

import (
	"testing"

	"repro/internal/lfr"
	"repro/internal/search"
)

// BenchmarkNaturalCommunity measures one seeded LFK community growth on
// an LFR graph.
func BenchmarkNaturalCommunity(b *testing.B) {
	bench, err := lfr.Generate(lfr.Params{
		N: 2000, AvgDeg: 20, MaxDeg: 60, Mu: 0.2,
		MinCom: 30, MaxCom: 120, Seed: 7,
	})
	if err != nil {
		b.Fatal(err)
	}
	g := bench.Graph
	st := search.NewState(g, g.MaxDegree())
	opt := Options{}.withDefaults(g.N())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.Reset()
		naturalCommunity(g, st, int32(i%g.N()), opt)
	}
}

// BenchmarkRunLFK measures a full LFK run (cover the whole graph).
func BenchmarkRunLFK(b *testing.B) {
	bench, err := lfr.Generate(lfr.Params{
		N: 2000, AvgDeg: 20, MaxDeg: 60, Mu: 0.2,
		MinCom: 30, MaxCom: 120, Seed: 7,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(bench.Graph, Options{Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}
