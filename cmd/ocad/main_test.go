package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestLoadGraph(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.txt")
	if err := os.WriteFile(path, []byte("0 1\n1 2\n2 0\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	g, err := loadGraph(path)
	if err != nil {
		t.Fatalf("loadGraph: %v", err)
	}
	if g.N() != 3 || g.M() != 3 {
		t.Errorf("got %d nodes %d edges, want 3/3", g.N(), g.M())
	}
	if _, err := loadGraph(filepath.Join(dir, "missing.txt")); err == nil {
		t.Error("loadGraph(missing) succeeded, want error")
	}
}

func TestLoadCover(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "c.txt")
	if err := os.WriteFile(path, []byte("0 1 2\n2 3\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	cv, err := loadCover(path)
	if err != nil {
		t.Fatalf("loadCover: %v", err)
	}
	if cv.Len() != 2 {
		t.Errorf("got %d communities, want 2", cv.Len())
	}
}

func TestRunRequiresInput(t *testing.T) {
	if err := run([]string{"-addr", "127.0.0.1:0"}); err == nil {
		t.Error("run without -in succeeded, want error")
	}
}

func TestFlagParsing(t *testing.T) {
	// Unknown flags and bad values must surface as errors, not os.Exit.
	if err := run([]string{"-no-such-flag"}); err == nil {
		t.Error("run with unknown flag succeeded, want error")
	}
	if err := run([]string{"-in", "g.txt", "-refresh-debounce", "zebra"}); err == nil {
		t.Error("run with bad -refresh-debounce succeeded, want error")
	}
}

func TestShardFlagValidation(t *testing.T) {
	cases := [][]string{
		{"-in", "g.txt", "-shards", "0"},
		{"-in", "g.txt", "-shards", "2", "-cover", "c.txt"},
		{"-in", "g.txt", "-shards", "2", "-lazy"},
		// Role conflicts and role-specific rejections.
		{"-in", "g.txt", "-serve-shard", "0", "-shard-addrs", "a,b"},
		{"-in", "g.txt", "-shards", "2", "-serve-shard", "2"},
		{"-in", "g.txt", "-shards", "2", "-serve-shard", "0", "-cover", "c.txt"},
		{"-in", "g.txt", "-shards", "2", "-serve-shard", "0", "-lazy"},
		{"-shard-addrs", "a,b", "-cover", "c.txt"},
		{"-shard-addrs", "a,b", "-lazy"},
		{"-shard-addrs", "a,b,c", "-shards", "2"},
		{"-serve-shard", "0", "-shards", "2"}, // shard-server role still needs -in
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("run(%v) succeeded, want validation error", args)
		}
	}
}

func TestResolveMaxNodes(t *testing.T) {
	cases := []struct{ flag, n, want int }{
		{-1, 100, 800}, // auto: 8x
		{0, 100, 0},    // fixed node set
		{500, 100, 500},
	}
	for _, tc := range cases {
		if got := resolveMaxNodes(tc.flag, tc.n); got != tc.want {
			t.Errorf("resolveMaxNodes(%d, %d) = %d, want %d", tc.flag, tc.n, got, tc.want)
		}
	}
}
