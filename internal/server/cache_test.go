package server

import (
	"context"
	"errors"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
)

// searchBody posts one /v1/search request and fails the test on any
// non-200.
func searchBody(t testing.TB, url string, req SearchRequest) SearchResponse {
	t.Helper()
	var resp SearchResponse
	if code := postJSON(t, url+"/v1/search", req, &resp); code != http.StatusOK {
		t.Fatalf("search %+v status = %d", req, code)
	}
	return resp
}

// TestSearchCacheHitDeterministic: a repeated request (same seed,
// params, rng stream, generation) is answered from the cache with an
// identical body, and the counters move accordingly.
func TestSearchCacheHitDeterministic(t *testing.T) {
	s, ts := newTestServer(t, Config{OCA: core.Options{Seed: 1, C: 0.5}})
	req := SearchRequest{Seed: 0, RNGSeed: 7}

	first := searchBody(t, ts.URL, req)
	if first.Cached {
		t.Fatal("first search reported cached")
	}
	if first.Generation == 0 {
		t.Fatal("search over a built cover must carry its generation")
	}
	second := searchBody(t, ts.URL, req)
	if !second.Cached {
		t.Fatal("second identical search not served from cache")
	}
	second.Cached = false
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("cached response diverged:\nfirst  %+v\nsecond %+v", first, second)
	}

	// A different rng stream is a different key.
	other := searchBody(t, ts.URL, SearchRequest{Seed: 0, RNGSeed: 8})
	if other.Cached {
		t.Fatal("different rng_seed must not hit the cache")
	}

	st := s.cache.stats()
	if st.Hits != 1 || st.Misses != 2 || st.Entries != 2 {
		t.Fatalf("stats = %+v, want 1 hit / 2 misses / 2 entries", st)
	}

	// The counters are surfaced on /healthz and /debug/metrics (JSON and
	// prometheus).
	var h healthzResponse
	getJSON(t, ts.URL+"/healthz", &h)
	if h.SearchCache == nil || h.SearchCache.Hits != 1 {
		t.Fatalf("healthz search_cache = %+v", h.SearchCache)
	}
	var m metricsResponse
	getJSON(t, ts.URL+"/debug/metrics", &m)
	if m.SearchCache == nil || m.SearchCache.Misses != 2 {
		t.Fatalf("debug/metrics search_cache = %+v", m.SearchCache)
	}
	resp, err := http.Get(ts.URL + "/debug/metrics?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf := make([]byte, 1<<16)
	n, _ := resp.Body.Read(buf)
	body := string(buf[:n])
	for _, want := range []string{"ocad_search_cache_hits_total 1", "ocad_search_cache_misses_total 2"} {
		if !strings.Contains(body, want) {
			t.Errorf("prometheus body missing %q", want)
		}
	}
}

// TestSearchCacheUnseededGrouping: requests with no rng_seed share one
// cached result per (seed, params, generation) — the hot-seed case.
func TestSearchCacheUnseededGrouping(t *testing.T) {
	_, ts := newTestServer(t, Config{OCA: core.Options{Seed: 1, C: 0.5}})
	first := searchBody(t, ts.URL, SearchRequest{Seed: 3})
	second := searchBody(t, ts.URL, SearchRequest{Seed: 3})
	if !second.Cached {
		t.Fatal("unseeded repeat of a hot seed not served from cache")
	}
	if !reflect.DeepEqual(first.Members, second.Members) {
		t.Fatalf("grouped unseeded results diverged: %v vs %v", first.Members, second.Members)
	}
}

// TestSearchCacheDisabled: a negative SearchCacheSize turns the whole
// hot path off — no cache, no coalescing, no healthz section.
func TestSearchCacheDisabled(t *testing.T) {
	s, ts := newTestServer(t, Config{OCA: core.Options{Seed: 1, C: 0.5}, SearchCacheSize: -1})
	if s.cache != nil {
		t.Fatal("cache constructed despite SearchCacheSize < 0")
	}
	req := SearchRequest{Seed: 0, RNGSeed: 7}
	if resp := searchBody(t, ts.URL, req); resp.Cached {
		t.Fatal("cached response from a disabled cache")
	}
	if resp := searchBody(t, ts.URL, req); resp.Cached {
		t.Fatal("cached response from a disabled cache")
	}
	var h healthzResponse
	getJSON(t, ts.URL+"/healthz", &h)
	if h.SearchCache != nil {
		t.Fatalf("healthz search_cache present on a disabled cache: %+v", h.SearchCache)
	}
}

// TestSearchCacheCoalescingUnit drives getOrCompute directly: with a
// gated compute, every concurrent caller for one key shares a single
// execution.
func TestSearchCacheCoalescingUnit(t *testing.T) {
	sc := newSearchCache(16, 0.95)
	key := searchKey{gen: 1, seed: 4}
	gate := make(chan struct{})
	var computes atomic.Int32

	const callers = 8
	var wg sync.WaitGroup
	results := make([]*searchEntry, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ent, _, err := sc.getOrCompute(context.Background(), key, func() (*searchEntry, error) {
				<-gate
				computes.Add(1)
				return &searchEntry{resp: SearchResponse{Seed: 4, Size: 3}}, nil
			})
			if err != nil {
				t.Errorf("caller %d: %v", i, err)
				return
			}
			results[i] = ent
		}(i)
	}
	// Wait until every non-leader is parked on the flight, then open the
	// gate: exactly one compute may run.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if sc.coalesced.Load() == callers-1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("coalesced = %d, want %d", sc.coalesced.Load(), callers-1)
		}
		time.Sleep(time.Millisecond)
	}
	close(gate)
	wg.Wait()

	if got := computes.Load(); got != 1 {
		t.Fatalf("compute ran %d times, want 1", got)
	}
	for i, ent := range results {
		if ent != results[0] {
			t.Fatalf("caller %d got a different entry", i)
		}
	}
	if st := sc.stats(); st.Misses != 1 || st.Coalesced != callers-1 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestSearchCacheCoalescingLeaderError: a failed leader must not poison
// the key — a follower retries and becomes the new leader.
func TestSearchCacheCoalescingLeaderError(t *testing.T) {
	sc := newSearchCache(16, 0.95)
	key := searchKey{gen: 1, seed: 4}
	boom := errors.New("leader gave up")
	gate := make(chan struct{})
	var calls atomic.Int32

	var wg sync.WaitGroup
	var followerEnt *searchEntry
	wg.Add(1)
	go func() {
		defer wg.Done()
		ent, _, err := sc.getOrCompute(context.Background(), key, func() (*searchEntry, error) {
			calls.Add(1)
			return &searchEntry{resp: SearchResponse{Seed: 4}}, nil
		})
		if err != nil {
			t.Errorf("follower: %v", err)
		}
		followerEnt = ent
	}()

	_, _, err := sc.getOrCompute(context.Background(), key, func() (*searchEntry, error) {
		// Leader: wait for the follower to park, then fail.
		deadline := time.Now().Add(5 * time.Second)
		for sc.coalesced.Load() == 0 {
			if time.Now().After(deadline) {
				t.Error("follower never parked")
				break
			}
			time.Sleep(time.Millisecond)
		}
		close(gate)
		return nil, boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("leader error = %v, want %v", err, boom)
	}
	<-gate
	wg.Wait()
	if calls.Load() != 1 || followerEnt == nil {
		t.Fatalf("follower retry: calls=%d ent=%v", calls.Load(), followerEnt)
	}
}

// TestSearchCacheStampedeHTTP: N concurrent identical requests over the
// wire run one underlying search between them.
func TestSearchCacheStampedeHTTP(t *testing.T) {
	s, ts := newTestServer(t, Config{OCA: core.Options{Seed: 1, C: 0.5}, SearchWorkers: 2})
	const clients = 16
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			searchBody(t, ts.URL, SearchRequest{Seed: 0, RNGSeed: 9})
		}()
	}
	wg.Wait()
	st := s.cache.stats()
	if st.Misses != 1 {
		t.Fatalf("stampede ran %d searches, want 1 (stats %+v)", st.Misses, st)
	}
	if st.Hits+st.Coalesced != clients-1 {
		t.Fatalf("hits+coalesced = %d, want %d (stats %+v)", st.Hits+st.Coalesced, clients-1, st)
	}
}

// TestSearchCacheLRUEviction: the cache never holds more than its
// capacity; the oldest key goes first.
func TestSearchCacheLRUEviction(t *testing.T) {
	sc := newSearchCache(2, 0.95)
	mk := func(seed int32) searchKey { return searchKey{gen: 1, seed: seed} }
	for seed := int32(0); seed < 3; seed++ {
		_, _, err := sc.getOrCompute(context.Background(), mk(seed), func() (*searchEntry, error) {
			return &searchEntry{localSeed: seed}, nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	st := sc.stats()
	if st.Entries != 2 || st.Evicted != 1 {
		t.Fatalf("stats = %+v, want 2 entries / 1 evicted", st)
	}
	// Key 0 was evicted; keys 1 and 2 remain.
	var recomputed bool
	_, fresh, err := sc.getOrCompute(context.Background(), mk(0), func() (*searchEntry, error) {
		recomputed = true
		return &searchEntry{localSeed: 0}, nil
	})
	if err != nil || !fresh || !recomputed {
		t.Fatalf("evicted key not recomputed: fresh=%v recomputed=%v err=%v", fresh, recomputed, err)
	}
}

// cacheTestConfig is the incremental-rebuild server the carry-forward
// tests use: deterministic OCA, tiny debounce, threshold high enough
// that pendant-edge batches rebuild incrementally.
func cacheTestConfig() Config {
	return Config{
		OCA:                  core.Options{Seed: 1, C: 0.5},
		RefreshDebounce:      time.Millisecond,
		IncrementalThreshold: 0.6,
		MaxNodes:             32,
	}
}

// primeIncremental takes a fresh preloaded-cover server past its
// mandatory first full rebuild so subsequent batches may take the
// incremental path.
func primeIncremental(t testing.TB, ts string) {
	t.Helper()
	var er EdgesResponse
	if code := postJSON(t, ts+"/v1/edges", EdgesRequest{Add: [][2]int32{{10, 11}}, Wait: true}, &er); code != http.StatusOK {
		t.Fatalf("priming rebuild status = %d", code)
	}
}

// TestSearchCacheCarryForwardEqualsFresh: an incremental publish whose
// dirty region avoids a cached community carries the entry to the new
// generation — and the carried answer must equal what a cache-disabled
// server computes fresh over the same mutation history.
func TestSearchCacheCarryForwardEqualsFresh(t *testing.T) {
	s, ts := newTestServer(t, cacheTestConfig())
	cfgOff := cacheTestConfig()
	cfgOff.SearchCacheSize = -1
	_, tsOff := newTestServer(t, cfgOff)

	for _, u := range []string{ts.URL, tsOff.URL} {
		primeIncremental(t, u)
	}

	// Cache seed 0's community (clique {0..5}) on the cached server.
	req := SearchRequest{Seed: 0, RNGSeed: 11}
	before := searchBody(t, ts.URL, req)

	// Mutate far away from it: a new pendant edge among uncovered nodes
	// rebuilds incrementally with a dirty region disjoint from clique A.
	var er EdgesResponse
	for _, u := range []string{ts.URL, tsOff.URL} {
		if code := postJSON(t, u+"/v1/edges", EdgesRequest{Add: [][2]int32{{12, 13}}, Wait: true}, &er); code != http.StatusOK {
			t.Fatalf("incremental batch status = %d", code)
		}
	}
	var st statsResponse
	getJSON(t, ts.URL+"/v1/cover/stats", &st)
	if st.RebuildMode != "incremental" {
		t.Fatalf("rebuild_mode = %q, want incremental (test premise)", st.RebuildMode)
	}

	after := searchBody(t, ts.URL, req)
	if !after.Cached {
		t.Fatalf("entry not carried across an untouched incremental publish (stats %+v)", s.cache.stats())
	}
	if after.Generation != before.Generation+1 {
		t.Fatalf("carried generation = %d, want %d", after.Generation, before.Generation+1)
	}
	if cs := s.cache.stats(); cs.CarriedForward == 0 {
		t.Fatalf("carried_forward counter = 0 (stats %+v)", cs)
	}

	// The control server recomputes from scratch over the identical
	// mutation history: deterministic rng stream, so carried == fresh.
	fresh := searchBody(t, tsOff.URL, req)
	if !reflect.DeepEqual(after.Members, fresh.Members) || after.Fitness != fresh.Fitness {
		t.Fatalf("carried result diverged from fresh:\ncarried %v (L=%v)\nfresh   %v (L=%v)",
			after.Members, after.Fitness, fresh.Members, fresh.Fitness)
	}
}

// TestSearchCacheInvalidatingPublish: a publish whose dirty region
// touches the cached community must NOT carry the entry — the next
// request recomputes over the new generation.
func TestSearchCacheInvalidatingPublish(t *testing.T) {
	s, ts := newTestServer(t, cacheTestConfig())
	primeIncremental(t, ts.URL)

	req := SearchRequest{Seed: 0, RNGSeed: 11}
	before := searchBody(t, ts.URL, req)

	// Touch the cached community itself: an edge into clique A dirties
	// its region, so carry-forward must drop the entry.
	var er EdgesResponse
	if code := postJSON(t, ts.URL+"/v1/edges", EdgesRequest{Add: [][2]int32{{0, 14}}, Wait: true}, &er); code != http.StatusOK {
		t.Fatalf("invalidating batch status = %d", code)
	}
	after := searchBody(t, ts.URL, req)
	if after.Cached {
		t.Fatalf("stale entry served across an invalidating publish: %+v", after)
	}
	if after.Generation <= before.Generation {
		t.Fatalf("generation did not advance: %d -> %d", before.Generation, after.Generation)
	}
	if cs := s.cache.stats(); cs.StalePruned == 0 {
		t.Fatalf("stale_pruned counter = 0 (stats %+v)", cs)
	}
}

// TestSearchCacheConcurrentPublishRace is the -race hammer: a mutator
// alternating far and near batches, an identical-seed stampede, and
// random readers, all concurrent. Every 200 response must be coherent
// (seed present in its members, a generation attached); the cache and
// pool bookkeeping must stay race-free.
func TestSearchCacheConcurrentPublishRace(t *testing.T) {
	_, ts := newTestServer(t, cacheTestConfig())
	primeIncremental(t, ts.URL)

	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Mutator: alternate batches that avoid and touch the hot community.
	wg.Add(1)
	go func() {
		defer wg.Done()
		edges := [][2]int32{{12, 13}, {0, 15}, {13, 14}, {1, 16}}
		for i := 0; i < 12; i++ {
			var er EdgesResponse
			e := edges[i%len(edges)]
			code := postJSON(t, ts.URL+"/v1/edges", EdgesRequest{Add: [][2]int32{e}, Wait: true}, &er)
			if code != http.StatusOK {
				t.Errorf("mutator batch %d status = %d", i, code)
				return
			}
		}
		close(stop)
	}()

	check := func(req SearchRequest) {
		var resp SearchResponse
		code := postJSON(t, ts.URL+"/v1/search", req, &resp)
		switch code {
		case http.StatusOK:
			if resp.Generation == 0 {
				t.Errorf("search response without a generation: %+v", resp)
				return
			}
			found := false
			for _, m := range resp.Members {
				if m == req.Seed {
					found = true
					break
				}
			}
			if !found {
				t.Errorf("seed %d missing from its own community %v (gen %d)", req.Seed, resp.Members, resp.Generation)
			}
		case http.StatusServiceUnavailable:
			// Pool saturation under the hammer is legitimate shedding.
		default:
			t.Errorf("search status = %d", code)
		}
	}

	// Identical-seed stampede: everyone asks for the same key.
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				check(SearchRequest{Seed: 0, RNGSeed: 42})
			}
		}()
	}
	// Random readers: distinct keys, exercising eviction and misses.
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(i)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				check(SearchRequest{Seed: int32(rng.Intn(10))})
			}
		}(i)
	}
	wg.Wait()
}

// TestSearchPoolGenerationStampAcrossLazyPublish: a lazy server's first
// cover build publishes generation 1 over the pointer-identical
// construction graph. Pooled search states checked out before and after
// must be told apart by generation, not graph identity — and responses
// must tag the generation their search actually ran over. Run under
// -race this also hammers the checkout path across the publish.
func TestSearchPoolGenerationStampAcrossLazyPublish(t *testing.T) {
	s, err := New(twoCliqueGraph(t), Config{Lazy: true, OCA: core.Options{Seed: 1, C: 0.5}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	ts := httptestNewServer(t, s)

	// Pre-cover searches run over the construction graph: generation 0,
	// never cached (nothing to key on).
	pre := searchBody(t, ts, SearchRequest{Seed: 0, RNGSeed: 3})
	if pre.Generation != 0 || pre.Cached {
		t.Fatalf("pre-cover search = %+v, want generation 0 uncached", pre)
	}

	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				var resp SearchResponse
				if code := postJSON(t, ts+"/v1/search", SearchRequest{Seed: 0, RNGSeed: 3}, &resp); code != http.StatusOK {
					t.Errorf("search status = %d", code)
					return
				}
			}
		}()
	}
	// Force the lazy build mid-hammer: stats needs the cover.
	var st statsResponse
	if code := getJSON(t, ts+"/v1/cover/stats", &st); code != http.StatusOK {
		t.Fatalf("stats status = %d", code)
	}
	wg.Wait()

	post := searchBody(t, ts, SearchRequest{Seed: 0, RNGSeed: 3})
	if post.Generation == 0 {
		t.Fatal("post-build search still tagged generation 0")
	}
}

// httptestNewServer mounts a Server on a test listener; split out so
// tests constructing Servers directly (not via newTestServer) share the
// cleanup wiring.
func httptestNewServer(t testing.TB, s *Server) string {
	t.Helper()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts.URL
}

// TestSearchCacheShardedCarry exercises the cache behind the in-process
// sharded provider: repeated sharded searches hit, and per-shard keys
// stay disjoint.
func TestSearchCacheShardedCarry(t *testing.T) {
	g := twoCliqueGraph(t)
	s, err := New(g, Config{OCA: core.Options{Seed: 1, C: 0.5}, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	url := httptestNewServer(t, s)

	first := searchBody(t, url, SearchRequest{Seed: 0, RNGSeed: 5})
	if first.Shard == nil {
		t.Fatal("sharded search response without a shard")
	}
	second := searchBody(t, url, SearchRequest{Seed: 0, RNGSeed: 5})
	if !second.Cached {
		t.Fatal("repeated sharded search not cached")
	}
	// A seed on the other shard is a different key.
	other := searchBody(t, url, SearchRequest{Seed: 1, RNGSeed: 5})
	if other.Cached {
		t.Fatal("other shard's first search reported cached")
	}
	if st := s.cache.stats(); st.Misses != 2 || st.Hits != 1 {
		t.Fatalf("stats = %+v, want 2 misses / 1 hit", st)
	}
}
