// Package metrics implements the community-structure quality measures of
// the paper — the set similarity ρ (eq. V.1) and the structure similarity
// Θ (eq. V.2) — plus two standard cross-checks (best-match F1 and the
// Omega index) used by the extension experiments.
package metrics

import (
	"math"

	"repro/internal/cover"
)

// Rho is the paper's similarity between two communities (eq. V.1):
//
//	ρ(C, D) = 1 − (|C\D| + |D\C|) / |C ∪ D|
//
// which equals |C ∩ D| / |C ∪ D| (the Jaccard index). It is 1 for equal
// sets and 0 for disjoint ones, and never divides by zero or returns
// NaN: nil and empty communities are interchangeable, ρ of two empty
// sets is defined as 1 (they are equal), and ρ of an empty set against
// a non-empty one is 0 (nothing shared). Callers comparing communities
// that may have shrunk to nothing mid-rebuild — the server's cache
// carry-forward spot check — rely on this totality.
func Rho(c, d cover.Community) float64 {
	if len(c) == 0 && len(d) == 0 {
		// Explicit guard rather than falling through to inter/union: the
		// union is 0 exactly when both sets are empty.
		return 1
	}
	inter := c.IntersectionSize(d)
	union := len(c) + len(d) - inter
	// |C\D| + |D\C| = union - inter, so ρ = inter/union; union > 0 here.
	return float64(inter) / float64(union)
}

// Theta is the paper's suitability of an observed structure O with
// respect to the reference structure F (eq. V.2):
//
//	V_i = { O_j : argmax_k ρ(F_k, O_j) = i }
//	Θ(F, O) = (1/ℓ) Σ_i (1/|V_i|) Σ_{O_j ∈ V_i} ρ(F_i, O_j)
//
// Each observed community votes for the reference community it matches
// best (ties go to the lowest index, making the measure deterministic);
// reference communities that attract no observed community contribute 0.
// Θ ∈ [0, 1]: 1 iff every reference community is matched exactly.
// It is defined for overlapping structures on both sides.
func Theta(ref, obs *cover.Cover) float64 {
	l := ref.Len()
	if l == 0 {
		return 0
	}
	if obs.Len() == 0 {
		return 0
	}
	sums := make([]float64, l)
	counts := make([]int, l)
	for _, oj := range obs.Communities {
		best, bestRho := 0, -1.0
		for i, fi := range ref.Communities {
			if r := Rho(fi, oj); r > bestRho {
				best, bestRho = i, r
			}
		}
		sums[best] += bestRho
		counts[best]++
	}
	total := 0.0
	for i := range sums {
		if counts[i] > 0 {
			total += sums[i] / float64(counts[i])
		}
	}
	return total / float64(l)
}

// BestMatchF1 returns the symmetric average-F1 between two covers: for
// each community in one cover take the best F1 against the other cover,
// average, and average the two directions. A standard complement to Θ
// that penalizes unmatched communities in both structures.
func BestMatchF1(a, b *cover.Cover) float64 {
	if a.Len() == 0 || b.Len() == 0 {
		return 0
	}
	return (avgBestF1(a, b) + avgBestF1(b, a)) / 2
}

func avgBestF1(from, to *cover.Cover) float64 {
	total := 0.0
	for _, c := range from.Communities {
		best := 0.0
		for _, d := range to.Communities {
			if f := f1(c, d); f > best {
				best = f
			}
		}
		total += best
	}
	return total / float64(from.Len())
}

func f1(c, d cover.Community) float64 {
	inter := c.IntersectionSize(d)
	if inter == 0 {
		return 0
	}
	p := float64(inter) / float64(len(d))
	r := float64(inter) / float64(len(c))
	return 2 * p * r / (p + r)
}

// OmegaIndex computes the Omega index of agreement between two covers
// over n nodes: the fraction of node pairs on whose co-membership count
// the covers agree, corrected for chance agreement. 1 means identical
// pairwise structure; 0 means chance-level agreement. Overlap-aware
// (counts how many communities each pair shares). O(n²) pairs — intended
// for evaluation-scale graphs, not the 10⁸-edge runs.
func OmegaIndex(a, b *cover.Cover, n int) float64 {
	if n < 2 {
		return 1
	}
	pairsA := pairCounts(a, n)
	pairsB := pairCounts(b, n)
	totalPairs := float64(n) * float64(n-1) / 2

	// Observed agreement: pairs with identical counts in both covers.
	// The maps hold only nonzero counts; pairs absent from both agree at 0.
	agree := 0.0
	distA := map[int]float64{} // shared-count -> number of pairs (incl. 0)
	distB := map[int]float64{}
	inBoth := 0.0
	for p, ka := range pairsA {
		distA[ka]++
		if kb, ok := pairsB[p]; ok {
			inBoth++
			if kb == ka {
				agree++
			}
		}
	}
	for _, kb := range pairsB {
		distB[kb]++
	}
	nonzeroA := float64(len(pairsA))
	nonzeroB := float64(len(pairsB))
	zeroA := totalPairs - nonzeroA
	zeroB := totalPairs - nonzeroB
	bothZero := totalPairs - nonzeroA - nonzeroB + inBoth
	agree += bothZero
	obs := agree / totalPairs

	// Expected agreement under independence.
	distA[0] += zeroA
	distB[0] += zeroB
	exp := 0.0
	for k, ca := range distA {
		if cb, ok := distB[k]; ok {
			exp += (ca / totalPairs) * (cb / totalPairs)
		}
	}
	if exp >= 1 {
		return 1
	}
	return (obs - exp) / (1 - exp)
}

func pairCounts(cv *cover.Cover, n int) map[[2]int32]int {
	counts := make(map[[2]int32]int)
	for _, c := range cv.Communities {
		for i := 0; i < len(c); i++ {
			for j := i + 1; j < len(c); j++ {
				counts[[2]int32{c[i], c[j]}]++
			}
		}
	}
	return counts
}

// NMI is the overlapping Normalized Mutual Information of Lancichinetti,
// Fortunato and Kertész (New J. Phys. 2009), the standard score for
// comparing covers that may overlap (plain partition NMI is undefined
// for them). Each community is a binary random variable over the n
// nodes; for every community of one cover the best (lowest conditional
// entropy) admissible match in the other is found, and
//
//	NMI(A, B) = 1 − ½·(H(A|B)/H(A) + H(B|A)/H(B))
//
// with the conditional entropies averaged in normalized form per
// community. It is 1 for identical covers, 0 for independent ones, and
// symmetric. Communities that carry no information (empty, or covering
// every node) are skipped; two covers with no informative communities
// compare as equal (1). An empty cover against a non-empty one scores 0.
func NMI(a, b *cover.Cover, n int) float64 {
	if a.Len() == 0 && b.Len() == 0 {
		return 1
	}
	if a.Len() == 0 || b.Len() == 0 || n == 0 {
		return 0
	}
	ha := condEntropyNorm(a, b, n)
	hb := condEntropyNorm(b, a, n)
	return 1 - (ha+hb)/2
}

// condEntropyNorm returns H(X|Y) normalized: the mean over informative
// communities X_i of min_j H(X_i|Y_j) / H(X_i), with the un-matched
// default H(X_i|Y) = H(X_i) (ratio 1).
func condEntropyNorm(x, y *cover.Cover, n int) float64 {
	fn := float64(n)
	sum, count := 0.0, 0
	for _, xi := range x.Communities {
		px := float64(len(xi)) / fn
		hx := h(px) + h(1-px)
		if hx == 0 {
			continue // empty or all-node community: no information
		}
		best := hx
		for _, yj := range y.Communities {
			py := float64(len(yj)) / fn
			inter := float64(xi.IntersectionSize(yj))
			p11 := inter / fn
			p10 := px - p11
			p01 := py - p11
			p00 := 1 - px - py + p11
			// LFK admissibility: without it the complement of a good
			// match would score as well as the match itself.
			if h(p11)+h(p00) < h(p01)+h(p10) {
				continue
			}
			hy := h(py) + h(1-py)
			cond := h(p11) + h(p10) + h(p01) + h(p00) - hy
			if cond < best {
				best = cond
			}
		}
		sum += best / hx
		count++
	}
	if count == 0 {
		return 0 // no informative communities: nothing to explain
	}
	return sum / float64(count)
}

// h is the entropy contribution −p·log2(p), with h(0) = 0. Tiny negative
// arguments from floating-point cancellation are clamped.
func h(p float64) float64 {
	if p <= 0 {
		return 0
	}
	return -p * math.Log2(p)
}
