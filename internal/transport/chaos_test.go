package transport

// Chaos gate (`make test-chaos`): a real multi-process replicated
// cluster — two shard servers, one replica on shard 0, one router —
// driven through scripted, deterministic fault storms swapped in at
// runtime via each process's /debug/fault-plan control endpoint.
//
// The invariants asserted across every storm:
//   - no read answers 5xx while a live quorum exists for its shard;
//   - per-shard generations never regress;
//   - a tripped breaker is visible in /debug/metrics and the broken
//     member is skipped without paying its timeout;
//   - abandoned downstream work shows up in the deadline-exceeded
//     counter;
//   - the cluster recovers when the storm lifts, without restarting
//     the router.
//
// With -short only the first storm (blackholed replica) runs — that is
// the `make test-chaos-smoke` CI gate.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/graph"
	"repro/internal/lfr"
	"repro/internal/spectral"
)

// putPlan swaps the fault plan on one process's control endpoint.
func putPlan(t *testing.T, addr string, p faultinject.Plan) {
	t.Helper()
	body, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPut, "http://"+addr+faultinject.ControlPath, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("PUT fault plan to %s: %v", addr, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("PUT fault plan to %s = %d: %s", addr, resp.StatusCode, b)
	}
}

// chaosResilience is one shard's entry in /debug/metrics "resilience".
type chaosResilience struct {
	Shard                int    `json:"shard"`
	BreakerState         string `json:"breaker_state"`
	BreakerTrips         uint64 `json:"breaker_trips"`
	BreakerFastFails     uint64 `json:"breaker_fast_fails"`
	Retries              uint64 `json:"retries"`
	RetryBudgetExhausted uint64 `json:"retry_budget_exhausted"`
	DeadlineExceeded     uint64 `json:"deadline_exceeded"`
}

// routerResilience fetches the router's per-shard resilience vector.
func routerResilience(t *testing.T, base string) map[int]chaosResilience {
	t.Helper()
	var mr struct {
		Resilience []chaosResilience `json:"resilience"`
	}
	if code := getJSON(t, base+"/debug/metrics", &mr); code != http.StatusOK {
		t.Fatalf("/debug/metrics = %d", code)
	}
	out := make(map[int]chaosResilience, len(mr.Resilience))
	for _, e := range mr.Resilience {
		out[e.Shard] = e
	}
	return out
}

// chaosHealthz is the healthz shape the chaos gate inspects.
type chaosHealthz struct {
	Status string `json:"status"`
	Shards []struct {
		Shard      int    `json:"shard"`
		Generation uint64 `json:"generation"`
		Replicas   []struct {
			Role    string `json:"role"`
			Healthy bool   `json:"healthy"`
		} `json:"replicas"`
	} `json:"shards"`
}

// shardGens snapshots per-shard generations from healthz.
func shardGens(t *testing.T, base string) map[int]uint64 {
	t.Helper()
	var hr chaosHealthz
	if code := getJSON(t, base+"/healthz", &hr); code != http.StatusOK {
		t.Fatalf("healthz = %d", code)
	}
	out := make(map[int]uint64, len(hr.Shards))
	for _, sh := range hr.Shards {
		out[sh.Shard] = sh.Generation
	}
	return out
}

// assertGensMonotone fails if any shard's generation regressed.
func assertGensMonotone(t *testing.T, what string, before, after map[int]uint64) {
	t.Helper()
	for sh, g := range after {
		if prev, ok := before[sh]; ok && g < prev {
			t.Errorf("%s: shard %d generation regressed %d -> %d", what, sh, prev, g)
		}
	}
}

func TestChaosCluster(t *testing.T) {
	bench, err := lfr.Generate(lfr.Params{
		N: 250, AvgDeg: 14, MaxDeg: 30, Mu: 0.02,
		MinCom: 25, MaxCom: 45, Seed: 7,
	})
	if err != nil {
		t.Fatalf("lfr.Generate: %v", err)
	}
	g := bench.Graph
	c, err := spectral.C(g, spectral.Options{})
	if err != nil {
		t.Fatalf("spectral.C: %v", err)
	}

	dir := t.TempDir()
	graphPath := filepath.Join(dir, "graph.txt")
	gf, err := os.Create(graphPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := graph.WriteEdgeList(gf, g); err != nil {
		t.Fatal(err)
	}
	gf.Close()

	// Every process starts with an empty (inject-nothing) plan; the
	// storms below swap real plans in over the control endpoint.
	planPath := filepath.Join(dir, "plan.json")
	if err := os.WriteFile(planPath, []byte(`{"seed":1}`), 0o644); err != nil {
		t.Fatal(err)
	}

	// Two shard servers, one replica following shard 0, one router with
	// a tight shard RPC deadline so paying a blackhole timeout is
	// measurably different from skipping a broken member.
	const k = 2
	common := []string{"-in", graphPath, "-seed", "11", "-c", fmt.Sprintf("%g", c),
		"-refresh-debounce", "5ms", "-fault-plan", planPath, "-addr", "127.0.0.1:0"}
	shardProcs := make([]*ocadProc, k)
	shardAddrs := make([]string, k)
	for s := 0; s < k; s++ {
		af := filepath.Join(dir, fmt.Sprintf("shard%d.addr", s))
		shardProcs[s] = startOcad(t, append(append([]string{}, common...),
			"-shards", fmt.Sprint(k), "-serve-shard", fmt.Sprint(s), "-addr-file", af)...)
		shardAddrs[s] = waitAddrFile(t, shardProcs[s], af, 60*time.Second)
	}
	replicaAF := filepath.Join(dir, "replica.addr")
	replica := startOcad(t,
		"-follow", shardAddrs[0],
		"-shard-poll-interval", "10ms",
		"-fault-plan", planPath,
		"-addr", "127.0.0.1:0", "-addr-file", replicaAF)
	replicaAddr := waitAddrFile(t, replica, replicaAF, 60*time.Second)

	routerAF := filepath.Join(dir, "router.addr")
	router := startOcad(t,
		"-shard-addrs", strings.Join(shardAddrs, ","),
		"-shards", fmt.Sprint(k),
		"-replica-addrs", replicaAddr+";",
		"-shard-poll-interval", "10ms",
		"-shard-request-timeout", "500ms",
		"-addr", "127.0.0.1:0", "-addr-file", routerAF)
	base := "http://" + waitAddrFile(t, router, routerAF, 60*time.Second)

	var hr chaosHealthz
	if code := getJSON(t, base+"/healthz", &hr); code != http.StatusOK || hr.Status != "ok" {
		t.Fatalf("boot healthz = %d %q; router logs:\n%s", code, hr.Status, router.logs())
	}
	if len(hr.Shards) != k || len(hr.Shards[0].Replicas) != 2 {
		t.Fatalf("boot healthz shards: %+v, want %d shards with primary+replica on shard 0", hr.Shards, k)
	}
	gens := shardGens(t, base)

	// --- Storm 1 (the -short smoke): blackhole the replica's wire
	// surface. The router's breaker on that member must trip, reads must
	// keep answering 200 from the primary without paying the blackhole
	// timeout, and clearing the plan must close the breaker and restore
	// member health — all without touching the router.
	putPlan(t, replicaAddr, faultinject.Plan{Seed: 42, Rules: []faultinject.Rule{
		{Path: "/shard/", Blackhole: true},
	}})

	deadline := time.Now().Add(30 * time.Second)
	for {
		if rs := routerResilience(t, base); rs[0].BreakerState != "closed" && rs[0].BreakerTrips >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("breaker never tripped on blackholed replica; metrics: %+v; router logs:\n%s",
				routerResilience(t, base), router.logs())
		}
		time.Sleep(25 * time.Millisecond)
	}

	// With the breaker open the member is excluded before any RPC: 20
	// sequential reads must come straight from the primary. If each paid
	// the 500ms blackhole timeout instead, this would take >= 10s.
	start := time.Now()
	for i := 0; i < 20; i++ {
		if code := getJSON(t, fmt.Sprintf("%s/v1/node/%d/communities", base, (2*i)%g.N()), nil); code != http.StatusOK {
			t.Fatalf("read %d with breaker-open replica = %d, want 200", i, code)
		}
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Errorf("20 reads with breaker-open replica took %v — the broken member is being paid for", d)
	}

	// Lift the storm: the poller's half-open probe must close the
	// breaker and the member must return to healthy, router untouched.
	putPlan(t, replicaAddr, faultinject.Plan{Seed: 42})
	deadline = time.Now().Add(30 * time.Second)
	for {
		rs := routerResilience(t, base)
		getJSON(t, base+"/healthz", &hr)
		healthy := hr.Status == "ok" && len(hr.Shards) > 0 && len(hr.Shards[0].Replicas) == 2 &&
			hr.Shards[0].Replicas[0].Healthy && hr.Shards[0].Replicas[1].Healthy
		if rs[0].BreakerState == "closed" && healthy {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("cluster never recovered after clearing the plan: metrics %+v healthz %+v", rs[0], hr)
		}
		time.Sleep(25 * time.Millisecond)
	}
	after := shardGens(t, base)
	assertGensMonotone(t, "storm 1", gens, after)
	gens = after

	if testing.Short() {
		return // smoke gate ends here; the full gate runs the remaining storms
	}

	// --- Storm 2: stall shard 0's primary by 150ms per request. Reads
	// must stay clean (the replica absorbs them, and 150ms is inside the
	// 500ms RPC deadline), a wait=true write must still succeed, and a
	// client that hangs up mid-write must surface in the
	// deadline-exceeded counter — the downstream RPC was canceled, not
	// left running.
	putPlan(t, shardAddrs[0], faultinject.Plan{Seed: 43, Rules: []faultinject.Rule{
		{Path: "/shard/", LatencyMs: 150},
	}})

	var (
		stop     = make(chan struct{})
		wg       sync.WaitGroup
		reads    atomic.Int64
		readErrs atomic.Int64
	)
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			cl := &http.Client{Timeout: 10 * time.Second}
			for i := seed; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := cl.Get(fmt.Sprintf("%s/v1/node/%d/communities", base, i%g.N()))
				if err != nil {
					t.Errorf("reader: %v", err)
					return
				}
				resp.Body.Close()
				reads.Add(1)
				if resp.StatusCode >= 500 {
					readErrs.Add(1)
					t.Errorf("read answered %d during primary stall", resp.StatusCode)
				}
			}
		}(100 * r)
	}

	// wait=true write through the stalled primary: slow but successful.
	if code := postJSON(t, base+"/v1/edges", map[string]any{"add": [][2]int32{{0, 2}}, "wait": true}, nil); code != http.StatusOK {
		t.Errorf("edges wait=true through stalled primary = %d, want 200", code)
	}

	// A client that gives up after 50ms abandons a write the primary is
	// stalling on; the router must cancel the downstream RPC and count
	// it.
	impatient := &http.Client{Timeout: 50 * time.Millisecond}
	for i := 0; i < 3; i++ {
		body, _ := json.Marshal(map[string]any{"add": [][2]int32{{4, 6}}})
		resp, err := impatient.Post(base+"/v1/edges", "application/json", bytes.NewReader(body))
		if err == nil {
			resp.Body.Close()
		}
	}
	deadline = time.Now().Add(15 * time.Second)
	for {
		if routerResilience(t, base)[0].DeadlineExceeded >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("abandoned writes never surfaced in deadline_exceeded; metrics: %+v", routerResilience(t, base))
		}
		time.Sleep(25 * time.Millisecond)
	}

	time.Sleep(500 * time.Millisecond)
	close(stop)
	wg.Wait()
	if reads.Load() == 0 {
		t.Fatal("no reads ran during the primary stall")
	}
	if readErrs.Load() != 0 {
		t.Fatalf("%d/%d reads answered 5xx during the primary stall, want 0", readErrs.Load(), reads.Load())
	}
	putPlan(t, shardAddrs[0], faultinject.Plan{Seed: 43})
	after = shardGens(t, base)
	assertGensMonotone(t, "storm 2", gens, after)
	gens = after

	// --- Storm 3: flap shard 1 — every request errors, then the storm
	// lifts. Health must degrade and recover (no router restart), shard
	// 0 reads must never notice, and generations must stay monotone.
	putPlan(t, shardAddrs[1], faultinject.Plan{Seed: 44, Rules: []faultinject.Rule{
		{Path: "/shard/", ErrorRate: 1},
	}})
	waitForStatus(t, base, "degraded")
	for i := 0; i < 10; i++ {
		if code := getJSON(t, fmt.Sprintf("%s/v1/node/%d/communities", base, 2*i), nil); code != http.StatusOK {
			t.Fatalf("shard-0 read %d during shard-1 flap = %d, want 200", i, code)
		}
	}
	putPlan(t, shardAddrs[1], faultinject.Plan{Seed: 44})
	waitForStatus(t, base, "ok")
	after = shardGens(t, base)
	assertGensMonotone(t, "storm 3", gens, after)
	gens = after

	// --- Storm 4: migration storm. A live rebalance — donor is the
	// replicated shard 0, receiver shard 1 — runs while the receiver's
	// slice-transfer endpoint is degraded: every ingest is slowed and
	// most responses torn mid-body. The handoff must either complete
	// (retries absorb the truncation — ingest chunks are idempotent) or
	// abort cleanly back to epoch 0 with the transfer window closed;
	// reads stay clean throughout, generations stay monotone, and once
	// the storm lifts the same migration must complete.
	putPlan(t, shardAddrs[1], faultinject.Plan{Seed: 45, Rules: []faultinject.Rule{
		{Path: PathIngest, LatencyMs: 100, TruncateRate: 0.6},
	}})
	var (
		stormStop  = make(chan struct{})
		stormWG    sync.WaitGroup
		stormReads atomic.Int64
		stormErrs  atomic.Int64
	)
	for r := 0; r < 3; r++ {
		stormWG.Add(1)
		go func(seed int) {
			defer stormWG.Done()
			cl := &http.Client{Timeout: 10 * time.Second}
			for i := seed; ; i++ {
				select {
				case <-stormStop:
					return
				default:
				}
				resp, err := cl.Get(fmt.Sprintf("%s/v1/node/%d/communities", base, i%g.N()))
				if err != nil {
					t.Errorf("reader: %v", err)
					return
				}
				resp.Body.Close()
				stormReads.Add(1)
				if resp.StatusCode >= 500 {
					stormErrs.Add(1)
					t.Errorf("read answered %d during the migration storm", resp.StatusCode)
				}
			}
		}(200 * r)
	}
	code, rr := postRebalance(t, base, 0, 100, 0, 1)
	switch code {
	case http.StatusOK:
		if rr.Epoch != 1 {
			t.Errorf("stormed handoff completed at epoch %d, want 1", rr.Epoch)
		}
	case http.StatusConflict:
		if rr.Epoch != 0 {
			t.Errorf("aborted handoff reports epoch %d, want preserved 0", rr.Epoch)
		}
	default:
		t.Fatalf("rebalance under ingest storm = %d (%+v)", code, rr)
	}
	if rr.Status.Active {
		t.Errorf("transfer window left open after the storm: %+v", rr.Status)
	}
	time.Sleep(250 * time.Millisecond)
	close(stormStop)
	stormWG.Wait()
	if stormReads.Load() == 0 {
		t.Fatal("no reads ran during the migration storm")
	}
	if stormErrs.Load() != 0 {
		t.Fatalf("%d/%d reads answered 5xx during the migration storm, want 0", stormErrs.Load(), stormReads.Load())
	}
	putPlan(t, shardAddrs[1], faultinject.Plan{Seed: 45})
	if code == http.StatusConflict {
		code, rr = postRebalance(t, base, 0, 100, 0, 1)
		if code != http.StatusOK || rr.Epoch != 1 {
			t.Fatalf("post-storm retry = %d epoch %d (%s), want 200 at epoch 1", code, rr.Epoch, rr.Error)
		}
	}
	var mhr migrateHealthz
	if code := getJSON(t, base+"/healthz", &mhr); code != http.StatusOK || mhr.Epoch != 1 {
		t.Fatalf("post-storm healthz = %d epoch %d, want 200 at epoch 1", code, mhr.Epoch)
	}
	after = shardGens(t, base)
	assertGensMonotone(t, "storm 4", gens, after)

	// The recovered cluster serves both shards again.
	for _, id := range []int{0, 1, 2, 3} {
		if code := getJSON(t, fmt.Sprintf("%s/v1/node/%d/communities", base, id), nil); code != http.StatusOK {
			t.Fatalf("post-recovery read of node %d = %d, want 200", id, code)
		}
	}
}
