package transport

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/cover"
	"repro/internal/graph"
	"repro/internal/lfr"
	"repro/internal/metrics"
	"repro/internal/postprocess"
	"repro/internal/shard"
	"repro/internal/spectral"
)

// ocadBin builds cmd/ocad once per test binary and returns its path.
var (
	buildOnce sync.Once
	binPath   string
	buildErr  error
)

func ocadBin(t *testing.T) string {
	t.Helper()
	buildOnce.Do(func() {
		dir, err := os.MkdirTemp("", "ocad-bin-")
		if err != nil {
			buildErr = err
			return
		}
		binPath = filepath.Join(dir, "ocad")
		cmd := exec.Command("go", "build", "-o", binPath, "./cmd/ocad")
		cmd.Dir = "../.."
		if out, err := cmd.CombinedOutput(); err != nil {
			buildErr = fmt.Errorf("go build ./cmd/ocad: %v\n%s", err, out)
		}
	})
	if buildErr != nil {
		t.Fatal(buildErr)
	}
	return binPath
}

// ocadProc is one spawned daemon with captured output.
type ocadProc struct {
	cmd *exec.Cmd
	out *bytes.Buffer
	mu  sync.Mutex
}

func (p *ocadProc) logs() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.out.String()
}

func startOcad(t *testing.T, args ...string) *ocadProc {
	t.Helper()
	p := &ocadProc{cmd: exec.Command(ocadBin(t), args...), out: &bytes.Buffer{}}
	pr, pw, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	p.cmd.Stdout = pw
	p.cmd.Stderr = pw
	if err := p.cmd.Start(); err != nil {
		t.Fatalf("starting ocad %v: %v", args, err)
	}
	pw.Close()
	go func() {
		sc := bufio.NewScanner(pr)
		for sc.Scan() {
			p.mu.Lock()
			p.out.WriteString(sc.Text() + "\n")
			p.mu.Unlock()
		}
	}()
	t.Cleanup(func() {
		if p.cmd.Process != nil {
			_ = p.cmd.Process.Kill()
			_, _ = p.cmd.Process.Wait()
		}
	})
	return p
}

// waitAddrFile polls until the daemon writes its bound address.
func waitAddrFile(t *testing.T, p *ocadProc, path string, timeout time.Duration) string {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if b, err := os.ReadFile(path); err == nil && len(b) > 0 {
			return string(b)
		}
		if p.cmd.ProcessState != nil {
			break
		}
		time.Sleep(25 * time.Millisecond)
	}
	t.Fatalf("daemon never wrote %s; logs:\n%s", path, p.logs())
	return ""
}

// TestMultiProcessCluster is the end-to-end acceptance gate for the
// multi-process deployment: three real `ocad -serve-shard` processes
// plus a real router process over the documented wire protocol must
// (1) pass the LFR equivalence gate — the served cover's NMI vs an
// unsharded cold run ≥ 0.99; (2) serve mutations and lookups with no
// 5xx while rebuilds run; (3) degrade explicitly (partial batch
// results, flagged vector) when a shard process is SIGKILLed;
// (4) recover that shard from its data directory on restart, rejoining
// at the exact pre-kill generation with no 5xx from the survivors; and
// (5) drain gracefully on SIGTERM.
func TestMultiProcessCluster(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes and runs multiple OCA builds")
	}
	bench, err := lfr.Generate(lfr.Params{
		N: 250, AvgDeg: 14, MaxDeg: 30, Mu: 0.02,
		MinCom: 25, MaxCom: 45, Seed: 7,
	})
	if err != nil {
		t.Fatalf("lfr.Generate: %v", err)
	}
	g := bench.Graph
	n := g.N()
	c, err := spectral.C(g, spectral.Options{})
	if err != nil {
		t.Fatalf("spectral.C: %v", err)
	}

	dir := t.TempDir()
	graphPath := filepath.Join(dir, "graph.txt")
	gf, err := os.Create(graphPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := graph.WriteEdgeList(gf, g); err != nil {
		t.Fatal(err)
	}
	gf.Close()

	// Boot the three shard servers, then the router (it waits for them).
	// Every shard persists to a subdirectory of one shared -data-dir so
	// the kill -9 + restart leg below can recover from disk.
	const k = 3
	dataDir := filepath.Join(dir, "data")
	common := []string{"-in", graphPath, "-seed", "11", "-c", fmt.Sprintf("%g", c),
		"-refresh-debounce", "5ms", "-addr", "127.0.0.1:0"}
	shardArgs := func(s int, af string) []string {
		return append(append([]string{}, common...),
			"-shards", fmt.Sprint(k), "-serve-shard", fmt.Sprint(s),
			"-data-dir", dataDir, "-addr-file", af)
	}
	shardProcs := make([]*ocadProc, k)
	shardAddrs := make([]string, k)
	for s := 0; s < k; s++ {
		af := filepath.Join(dir, fmt.Sprintf("shard%d.addr", s))
		shardProcs[s] = startOcad(t, shardArgs(s, af)...)
		shardAddrs[s] = waitAddrFile(t, shardProcs[s], af, 60*time.Second)
	}
	routerAddrFile := filepath.Join(dir, "router.addr")
	router := startOcad(t,
		"-shard-addrs", strings.Join(shardAddrs, ","),
		"-shards", fmt.Sprint(k),
		"-shard-poll-interval", "25ms",
		"-addr", "127.0.0.1:0", "-addr-file", routerAddrFile)
	base := "http://" + waitAddrFile(t, router, routerAddrFile, 60*time.Second)

	// (0) Liveness and global dimensions over the wire.
	var hr struct {
		Status string `json:"status"`
		Nodes  int    `json:"nodes"`
		Edges  int64  `json:"edges"`
		Shards []struct {
			Shard      int    `json:"shard"`
			Generation uint64 `json:"generation"`
		} `json:"shards"`
	}
	if code := getJSON(t, base+"/healthz", &hr); code != http.StatusOK {
		t.Fatalf("healthz = %d; router logs:\n%s", code, router.logs())
	}
	if hr.Status != "ok" || hr.Nodes != n || hr.Edges != g.M() || len(hr.Shards) != k {
		t.Fatalf("healthz: %+v, want ok with %d nodes / %d edges / %d shards", hr, n, g.M(), k)
	}

	// (1) NMI equivalence gate: the exported (merged) cover vs an
	// unsharded cold run over the same graph, same seed and c.
	exported := exportCover(t, base, n)
	cold, err := core.Run(g, core.Options{Seed: 11, C: c})
	if err != nil {
		t.Fatalf("cold run: %v", err)
	}
	merged := postprocess.Merge(exported, postprocess.DefaultMergeThreshold)
	if nmi := metrics.NMI(merged, cold.Cover, n); nmi < 0.99 {
		t.Errorf("NMI(exported, cold) = %.4f, want >= 0.99 (exported %d communities, cold %d)",
			nmi, merged.Len(), cold.Cover.Len())
	}
	if truthNMI := metrics.NMI(merged, bench.Communities, n); truthNMI < 0.6 {
		t.Errorf("exported cover vs planted truth NMI = %.4f, suspiciously low", truthNMI)
	}

	// (2) No 5xx during rebuilds: concurrent readers while mutation
	// batches fan out over the wire and trigger per-shard rebuilds.
	var (
		fiveHundreds atomic.Int64
		requests     atomic.Int64
		stop         = make(chan struct{})
		wg           sync.WaitGroup
	)
	check := func(code int, what string) {
		requests.Add(1)
		if code >= 500 {
			fiveHundreds.Add(1)
			t.Errorf("%s answered %d during rebuild", what, code)
		}
	}
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			cl := &http.Client{Timeout: 10 * time.Second}
			for {
				select {
				case <-stop:
					return
				default:
				}
				id := rng.Intn(n)
				resp, err := cl.Get(fmt.Sprintf("%s/v1/node/%d/communities", base, id))
				if err != nil {
					t.Errorf("reader: %v", err)
					return
				}
				resp.Body.Close()
				check(resp.StatusCode, "node lookup")
				body, _ := json.Marshal(map[string]any{"ids": []int32{int32(rng.Intn(n)), int32(rng.Intn(n))}})
				resp, err = cl.Post(base+"/v1/nodes/communities", "application/json", bytes.NewReader(body))
				if err != nil {
					t.Errorf("batch reader: %v", err)
					return
				}
				resp.Body.Close()
				check(resp.StatusCode, "batch lookup")
			}
		}(int64(100 + r))
	}
	mutRng := rand.New(rand.NewSource(42))
	lastGen := uint64(0)
	for i := 0; i < 8; i++ {
		add := [][2]int32{}
		for j := 0; j < 5; j++ {
			u, v := int32(mutRng.Intn(n)), int32(mutRng.Intn(n))
			if u == v {
				continue
			}
			add = append(add, [2]int32{u, v})
		}
		var er struct {
			Generation uint64 `json:"generation"`
			Applied    bool   `json:"applied"`
		}
		code := postJSON(t, base+"/v1/edges", map[string]any{"add": add, "wait": i%2 == 0}, &er)
		if code != http.StatusOK && code != http.StatusAccepted {
			t.Fatalf("edges batch %d = %d", i, code)
		}
		if er.Generation > lastGen {
			lastGen = er.Generation
		}
	}
	time.Sleep(500 * time.Millisecond)
	close(stop)
	wg.Wait()
	if requests.Load() == 0 {
		t.Fatal("no concurrent reads ran")
	}
	if lastGen < 2 {
		t.Errorf("generation after mutations = %d, want rebuilds to have published", lastGen)
	}

	// (3) Kill shard 2's process (SIGKILL — no drain, no final seal):
	// partial batch results with explicit per-shard errors, single
	// lookups shed load, health degrades.
	if code := getJSON(t, base+"/healthz", &hr); code != http.StatusOK {
		t.Fatalf("pre-kill healthz = %d", code)
	}
	preKillGen := uint64(0)
	for _, sh := range hr.Shards {
		if sh.Shard == 2 {
			preKillGen = sh.Generation
		}
	}
	if preKillGen == 0 {
		t.Fatalf("pre-kill healthz has no generation for shard 2: %+v", hr.Shards)
	}
	if err := shardProcs[2].cmd.Process.Kill(); err != nil {
		t.Fatalf("killing shard 2: %v", err)
	}
	waitForStatus(t, base, "degraded")
	var br struct {
		Results []struct {
			Node  int32  `json:"node"`
			Error string `json:"error"`
		} `json:"results"`
		Shards shard.GenVector `json:"shards"`
	}
	if code := postJSON(t, base+"/v1/nodes/communities", map[string]any{"ids": []int32{0, 1, 2}}, &br); code != http.StatusOK {
		t.Fatalf("degraded batch = %d, want 200 with partial results", code)
	}
	if br.Results[0].Error != "" || br.Results[1].Error != "" || br.Results[2].Error == "" {
		t.Errorf("degraded batch results: %+v", br.Results)
	}
	found := false
	for _, e := range br.Shards {
		if e.Shard == 2 && e.Err != "" {
			found = true
		}
	}
	if !found {
		t.Errorf("vector does not flag killed shard: %+v", br.Shards)
	}
	if code := getJSON(t, base+"/v1/node/2/communities", nil); code != http.StatusServiceUnavailable {
		t.Errorf("lookup on killed shard = %d, want 503", code)
	}
	if code := getJSON(t, base+"/v1/node/0/communities", nil); code != http.StatusOK {
		t.Errorf("lookup on live shard = %d, want 200", code)
	}

	// (4) Restart the killed shard on its old address: it must recover
	// from its data directory and rejoin at the exact pre-kill
	// generation — the router's health returns to ok and lookups routed
	// to it serve again. The later -addr overrides common's :0.
	af2 := filepath.Join(dir, "shard2-restart.addr")
	shardProcs[2] = startOcad(t, append(shardArgs(2, af2), "-addr", shardAddrs[2])...)
	if got := waitAddrFile(t, shardProcs[2], af2, 60*time.Second); got != shardAddrs[2] {
		t.Fatalf("restarted shard bound %s, want %s", got, shardAddrs[2])
	}
	waitForStatus(t, base, "ok")
	if code := getJSON(t, base+"/healthz", &hr); code != http.StatusOK {
		t.Fatalf("post-restart healthz = %d", code)
	}
	for _, sh := range hr.Shards {
		if sh.Shard == 2 && sh.Generation != preKillGen {
			t.Errorf("restarted shard rejoined at generation %d, want pre-kill %d", sh.Generation, preKillGen)
		}
	}
	if code := getJSON(t, base+"/v1/node/2/communities", nil); code != http.StatusOK {
		t.Errorf("lookup on restarted shard = %d, want 200", code)
	}
	if logs := shardProcs[2].logs(); !strings.Contains(logs, "recovered generation") {
		t.Errorf("restarted shard did not log recovery:\n%s", logs)
	}

	// (5) Graceful drain: SIGTERM exits cleanly for router and shards.
	for _, p := range []*ocadProc{router, shardProcs[0], shardProcs[1], shardProcs[2]} {
		if err := p.cmd.Process.Signal(syscall.SIGTERM); err != nil {
			t.Fatalf("SIGTERM: %v", err)
		}
	}
	for i, p := range []*ocadProc{router, shardProcs[0], shardProcs[1], shardProcs[2]} {
		done := make(chan error, 1)
		go func() { done <- p.cmd.Wait() }()
		select {
		case err := <-done:
			if err != nil {
				t.Errorf("process %d exited with %v; logs:\n%s", i, err, p.logs())
			}
		case <-time.After(30 * time.Second):
			t.Errorf("process %d did not exit after SIGTERM; logs:\n%s", i, p.logs())
		}
	}
}

// TestMultiProcessClusterReplicated is the replicated deployment's
// process-level acceptance gate: one primary plus two real
// `ocad -follow` replica processes on one shard, behind a real router
// started with -replica-addrs. The contract proven here: replicas
// surface in /healthz with role and freshness; read-your-writes holds
// through the replica set; and when the primary is SIGKILLed
// mid-traffic, reads keep flowing from the replicas with **zero 5xx**
// while writes degrade to an explicit 503. Finally SIGTERM drains the
// router and replicas cleanly.
func TestMultiProcessClusterReplicated(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes and runs an OCA build")
	}
	bench, err := lfr.Generate(lfr.Params{
		N: 250, AvgDeg: 14, MaxDeg: 30, Mu: 0.02,
		MinCom: 25, MaxCom: 45, Seed: 7,
	})
	if err != nil {
		t.Fatalf("lfr.Generate: %v", err)
	}
	g := bench.Graph
	n := g.N()
	c, err := spectral.C(g, spectral.Options{})
	if err != nil {
		t.Fatalf("spectral.C: %v", err)
	}

	dir := t.TempDir()
	graphPath := filepath.Join(dir, "graph.txt")
	gf, err := os.Create(graphPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := graph.WriteEdgeList(gf, g); err != nil {
		t.Fatal(err)
	}
	gf.Close()

	// One primary, two replicas following it, one router over all three.
	primaryAF := filepath.Join(dir, "primary.addr")
	primary := startOcad(t,
		"-in", graphPath, "-seed", "11", "-c", fmt.Sprintf("%g", c),
		"-refresh-debounce", "5ms",
		"-shards", "1", "-serve-shard", "0",
		"-addr", "127.0.0.1:0", "-addr-file", primaryAF)
	primaryAddr := waitAddrFile(t, primary, primaryAF, 60*time.Second)

	replicaProcs := make([]*ocadProc, 2)
	replicaAddrs := make([]string, 2)
	for i := range replicaProcs {
		af := filepath.Join(dir, fmt.Sprintf("replica%d.addr", i))
		replicaProcs[i] = startOcad(t,
			"-follow", primaryAddr,
			"-shard-poll-interval", "10ms",
			"-addr", "127.0.0.1:0", "-addr-file", af)
		replicaAddrs[i] = waitAddrFile(t, replicaProcs[i], af, 60*time.Second)
	}
	routerAF := filepath.Join(dir, "router.addr")
	router := startOcad(t,
		"-shard-addrs", primaryAddr,
		"-shards", "1",
		"-replica-addrs", strings.Join(replicaAddrs, ","),
		"-shard-poll-interval", "10ms",
		"-addr", "127.0.0.1:0", "-addr-file", routerAF)
	base := "http://" + waitAddrFile(t, router, routerAF, 60*time.Second)

	// (0) healthz lists all three members with roles.
	type healthzReply struct {
		Status string `json:"status"`
		Shards []struct {
			Shard    int `json:"shard"`
			Replicas []struct {
				Role       string `json:"role"`
				Generation uint64 `json:"generation"`
				Healthy    bool   `json:"healthy"`
			} `json:"replicas"`
		} `json:"shards"`
	}
	var hr healthzReply
	if code := getJSON(t, base+"/healthz", &hr); code != http.StatusOK || hr.Status != "ok" {
		t.Fatalf("healthz = %d %q; router logs:\n%s", code, hr.Status, router.logs())
	}
	if len(hr.Shards) != 1 || len(hr.Shards[0].Replicas) != 3 {
		t.Fatalf("healthz members: %+v, want primary + 2 replicas", hr.Shards)
	}
	if r := hr.Shards[0].Replicas; r[0].Role != "primary" || r[1].Role != "replica" || r[2].Role != "replica" {
		t.Fatalf("healthz roles: %+v", hr.Shards[0].Replicas)
	}

	// (1) Read-your-writes through the replica set.
	var er struct {
		Generation uint64 `json:"generation"`
	}
	if code := postJSON(t, base+"/v1/edges", map[string]any{"add": [][2]int32{{0, 5}}, "wait": true}, &er); code != http.StatusOK {
		t.Fatalf("edges wait=true = %d", code)
	}
	if code := getJSON(t, base+"/v1/node/0/communities", nil); code != http.StatusOK {
		t.Fatalf("read-your-writes lookup = %d", code)
	}

	// (2) Wait until the router sees every member at (or past) the
	// flushed generation — the read floor — so the kill below cannot
	// race the replicas' catch-up.
	deadline := time.Now().Add(30 * time.Second)
	for {
		getJSON(t, base+"/healthz", &hr)
		caughtUp := len(hr.Shards) == 1 && len(hr.Shards[0].Replicas) == 3
		for _, m := range hr.Shards[0].Replicas {
			caughtUp = caughtUp && m.Healthy && m.Generation >= er.Generation
		}
		if caughtUp {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("replicas never reached generation %d: %+v", er.Generation, hr.Shards)
		}
		time.Sleep(25 * time.Millisecond)
	}

	// (3) Reader barrage across the primary's death: zero 5xx.
	var (
		readErrs atomic.Int64
		reads    atomic.Int64
		stop     = make(chan struct{})
		wg       sync.WaitGroup
	)
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			cl := &http.Client{Timeout: 10 * time.Second}
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := cl.Get(fmt.Sprintf("%s/v1/node/%d/communities", base, rng.Intn(n)))
				if err != nil {
					t.Errorf("reader: %v", err)
					return
				}
				resp.Body.Close()
				reads.Add(1)
				if resp.StatusCode >= 500 {
					readErrs.Add(1)
					t.Errorf("read answered %d with replicas serving", resp.StatusCode)
				}
			}
		}(int64(300 + r))
	}

	if err := primary.cmd.Process.Kill(); err != nil {
		t.Fatalf("killing primary: %v", err)
	}
	// Writes degrade to an explicit 503 once the poller notices.
	for deadline = time.Now().Add(15 * time.Second); ; time.Sleep(50 * time.Millisecond) {
		code := postJSON(t, base+"/v1/edges", map[string]any{"add": [][2]int32{{1, 6}}}, nil)
		if code == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("writes after primary kill still answer %d, want 503; router logs:\n%s", code, router.logs())
		}
	}
	// Keep reading well past detection, then assert the count.
	time.Sleep(500 * time.Millisecond)
	close(stop)
	wg.Wait()
	if reads.Load() == 0 {
		t.Fatal("no reads ran across the kill")
	}
	if readErrs.Load() != 0 {
		t.Fatalf("%d/%d reads answered 5xx across the primary kill, want 0", readErrs.Load(), reads.Load())
	}
	// Reads are served, so health stays ok — with the dead primary and
	// live replicas called out per member.
	if code := getJSON(t, base+"/healthz", &hr); code != http.StatusOK || hr.Status != "ok" {
		t.Errorf("healthz with dead primary = %d %q, want 200 ok", code, hr.Status)
	}
	if r := hr.Shards[0].Replicas; r[0].Healthy || !r[1].Healthy || !r[2].Healthy {
		t.Errorf("post-kill member health: %+v", r)
	}

	// (4) Graceful drain: SIGTERM exits cleanly for router and replicas.
	procs := []*ocadProc{router, replicaProcs[0], replicaProcs[1]}
	for _, p := range procs {
		if err := p.cmd.Process.Signal(syscall.SIGTERM); err != nil {
			t.Fatalf("SIGTERM: %v", err)
		}
	}
	for i, p := range procs {
		done := make(chan error, 1)
		go func() { done <- p.cmd.Wait() }()
		select {
		case err := <-done:
			if err != nil {
				t.Errorf("process %d exited with %v; logs:\n%s", i, err, p.logs())
			}
		case <-time.After(30 * time.Second):
			t.Errorf("process %d did not exit after SIGTERM; logs:\n%s", i, p.logs())
		}
	}
}

// exportCover streams /v1/cover/export and reassembles the served
// communities (global ids) as one cover.
func exportCover(t *testing.T, base string, n int) *cover.Cover {
	t.Helper()
	resp, err := http.Get(base + "/v1/cover/export")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("export = %d", resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	if !sc.Scan() {
		t.Fatal("export: no meta line")
	}
	var meta struct {
		Communities int             `json:"communities"`
		Shards      shard.GenVector `json:"shards"`
	}
	if err := json.Unmarshal(sc.Bytes(), &meta); err != nil {
		t.Fatalf("export meta: %v", err)
	}
	var comms []cover.Community
	for sc.Scan() {
		var line struct {
			Members []int32 `json:"members"`
		}
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("export line: %v", err)
		}
		for _, v := range line.Members {
			if v < 0 || int(v) >= n {
				t.Fatalf("export member %d outside [0, %d)", v, n)
			}
		}
		comms = append(comms, cover.NewCommunity(line.Members))
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(comms) != meta.Communities {
		t.Fatalf("export streamed %d communities, meta says %d", len(comms), meta.Communities)
	}
	return cover.NewCover(comms)
}
