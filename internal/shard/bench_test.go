package shard

import (
	"testing"

	"repro/internal/core"
	"repro/internal/lfr"
)

// benchRouter builds a router over a fixed LFR benchmark graph.
func benchRouter(b *testing.B, k int) *Router {
	b.Helper()
	bench, err := lfr.Generate(lfr.Params{
		N: 1000, AvgDeg: 16, MaxDeg: 40, Mu: 0.05,
		MinCom: 25, MaxCom: 60, Seed: 3,
	})
	if err != nil {
		b.Fatalf("lfr.Generate: %v", err)
	}
	r, err := NewRouter(bench.Graph, k, Config{OCA: core.Options{Seed: 1, C: 0.5}})
	if err != nil {
		b.Fatalf("NewRouter: %v", err)
	}
	b.Cleanup(r.Close)
	return r
}

// benchmarkBatchLookup measures a 256-id fan-out batch: load views
// once, resolve each id through its owning shard, count memberships —
// the hot loop behind POST /v1/nodes/communities. `make bench-shard`
// compares K=1 (no partitioning, identity-ish tables) against K=4.
func benchmarkBatchLookup(b *testing.B, k int) {
	r := benchRouter(b, k)
	const batch = 256
	ids := make([]int32, batch)
	for i := range ids {
		ids[i] = int32((i * 37) % 1000)
	}
	b.ResetTimer()
	total := 0
	for i := 0; i < b.N; i++ {
		views, _ := r.Views()
		for _, v := range ids {
			view := views[int(v)%k]
			local, ok := view.Local(v)
			if !ok {
				b.Fatalf("id %d unresolvable", v)
			}
			total += len(view.Snap.Index.Communities(local))
		}
	}
	if total == 0 {
		b.Fatal("no memberships resolved; benchmark is vacuous")
	}
}

func BenchmarkRouterBatchLookupK1(b *testing.B) { benchmarkBatchLookup(b, 1) }
func BenchmarkRouterBatchLookupK4(b *testing.B) { benchmarkBatchLookup(b, 4) }
