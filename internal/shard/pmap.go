// The versioned partition map: the epoch-numbered node-range→shard
// assignment that generalizes the fixed modulo-K partition. The base
// assignment stays v mod K; a map carries zero or more range overrides
// ("nodes in [Lo, Hi) whose base class is From are owned by To"), so a
// live rebalance is one new override — and moving a range back home is
// the override's removal. Epochs order maps totally: every flip
// increments the epoch, the wire protocol carries it next to the
// (shard, generation) vectors, and recovery rejoins at the persisted
// epoch. See docs/PROTOCOL.md "Partition map & rebalancing".

package shard

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"
	"sort"
)

// Range is one override of the base modulo-K assignment: global node
// ids v with Lo <= v < Hi and v mod K == From are owned by shard To.
// Keeping the base class in the key gives every override a single
// donor, which is what makes a two-generation handoff well-defined.
type Range struct {
	Lo   int32 `json:"lo"`
	Hi   int32 `json:"hi"`
	From int   `json:"from"`
	To   int   `json:"to"`
}

// contains reports whether the range covers global id v of its class.
func (r Range) contains(v int32) bool { return v >= r.Lo && v < r.Hi }

// PartitionMap is a versioned node→shard assignment. The zero value is
// invalid; use NewPartitionMap. Maps are immutable once published —
// Move returns a successor at Epoch+1 — so one map pointer may be read
// lock-free by any number of goroutines.
type PartitionMap struct {
	// Epoch orders maps totally; the base modulo-K map is epoch 0.
	Epoch uint64 `json:"epoch"`
	// K is the partition width (the shard count).
	K int `json:"k"`
	// Ranges are the overrides, sorted by (From, Lo), disjoint per
	// class. Empty means the pure modulo-K assignment.
	Ranges []Range `json:"ranges,omitempty"`
}

// NewPartitionMap returns the epoch-0 pure modulo-K map.
func NewPartitionMap(k int) (*PartitionMap, error) {
	if k < 1 {
		return nil, fmt.Errorf("shard: K=%d must be at least 1", k)
	}
	return &PartitionMap{K: k}, nil
}

// ShardOf returns the shard owning global node id v: the base class
// v mod K unless an override range covers it. Negative ids are the
// caller's responsibility to reject.
func (m *PartitionMap) ShardOf(v int32) int {
	base := int(v % int32(m.K))
	for _, r := range m.Ranges {
		if r.From == base && r.contains(v) {
			return r.To
		}
	}
	return base
}

// Validate rejects malformed maps: a non-positive K, an inverted or
// empty range (Lo >= Hi — a gap in the interval algebra), shard
// indexes outside [0, K), a self-move (From == To), and two ranges of
// the same class that overlap (two owners for one node).
func (m *PartitionMap) Validate() error {
	if m.K < 1 {
		return fmt.Errorf("shard: partition map K=%d must be at least 1", m.K)
	}
	byClass := make(map[int][]Range, len(m.Ranges))
	for i, r := range m.Ranges {
		if r.Lo < 0 || r.Lo >= r.Hi {
			return fmt.Errorf("shard: partition map range %d: [%d, %d) is empty or inverted", i, r.Lo, r.Hi)
		}
		if r.From < 0 || r.From >= m.K || r.To < 0 || r.To >= m.K {
			return fmt.Errorf("shard: partition map range %d: shards %d→%d outside [0, %d)", i, r.From, r.To, m.K)
		}
		if r.From == r.To {
			return fmt.Errorf("shard: partition map range %d: self-move of class %d", i, r.From)
		}
		byClass[r.From] = append(byClass[r.From], r)
	}
	for class, rs := range byClass {
		sort.Slice(rs, func(i, j int) bool { return rs[i].Lo < rs[j].Lo })
		for i := 1; i < len(rs); i++ {
			if rs[i].Lo < rs[i-1].Hi {
				return fmt.Errorf("shard: partition map: class %d ranges [%d, %d) and [%d, %d) overlap",
					class, rs[i-1].Lo, rs[i-1].Hi, rs[i].Lo, rs[i].Hi)
			}
		}
	}
	return nil
}

// Clone returns a deep copy (the ranges slice is not shared).
func (m *PartitionMap) Clone() *PartitionMap {
	return &PartitionMap{Epoch: m.Epoch, K: m.K, Ranges: append([]Range(nil), m.Ranges...)}
}

// firstOfClass returns the smallest v >= lo with v mod K == class, in
// int64 — lo + rem overflows int32 when lo is within K of MaxInt32,
// and a negative id would make ShardOf report a bogus owner for ranges
// reaching the top of the id space.
func firstOfClass(lo int32, class, k int) int64 {
	rem := int64(class) - int64(lo%int32(k))
	if rem < 0 {
		rem += int64(k)
	}
	return int64(lo) + rem
}

// hasNodeOfClass reports whether [lo, hi) contains a node of class.
func hasNodeOfClass(lo, hi int32, class, k int) bool {
	return firstOfClass(lo, class, k) < int64(hi)
}

// Move returns the successor map (Epoch+1) reassigning every node of
// [lo, hi) currently owned by shard from to shard to. It composes with
// prior overrides — re-migrating an already-moved range splits or
// replaces the old override, and moving a range back to its base class
// removes it — keeping the map canonical (per-class disjoint, only
// overrides that differ from the base). It fails when shard from owns
// no node in the range (nothing to hand off).
func (m *PartitionMap) Move(lo, hi int32, from, to int) (*PartitionMap, error) {
	if lo < 0 || lo >= hi {
		return nil, fmt.Errorf("shard: move range [%d, %d) is empty or inverted", lo, hi)
	}
	if from < 0 || from >= m.K || to < 0 || to >= m.K {
		return nil, fmt.Errorf("shard: move %d→%d outside [0, %d)", from, to, m.K)
	}
	if from == to {
		return nil, fmt.Errorf("shard: move %d→%d is a self-move", from, to)
	}
	next := &PartitionMap{Epoch: m.Epoch + 1, K: m.K}
	moved := false
	for class := 0; class < m.K; class++ {
		// Elementary intervals of this class: every boundary any
		// override (or the move itself) introduces.
		cuts := []int32{0, math.MaxInt32}
		if lo < math.MaxInt32 {
			cuts = append(cuts, lo)
		}
		cuts = append(cuts, hi)
		for _, r := range m.Ranges {
			if r.From == class {
				cuts = append(cuts, r.Lo, r.Hi)
			}
		}
		sort.Slice(cuts, func(i, j int) bool { return cuts[i] < cuts[j] })
		var pieces []Range // desired overrides for this class, pre-merge
		for i := 1; i < len(cuts); i++ {
			a, b := cuts[i-1], cuts[i]
			if a >= b || !hasNodeOfClass(a, b, class, m.K) {
				continue
			}
			// The int32 cast is safe: hasNodeOfClass guaranteed the
			// first node of the class sits below b <= MaxInt32.
			owner := m.ShardOf(int32(firstOfClass(a, class, m.K)))
			if owner == from && a >= lo && b <= hi {
				owner = to
				moved = true
			}
			if owner == class {
				continue // base assignment needs no override
			}
			if n := len(pieces); n > 0 && pieces[n-1].Hi == a && pieces[n-1].To == owner {
				pieces[n-1].Hi = b // merge adjacent equal-owner intervals
				continue
			}
			pieces = append(pieces, Range{Lo: a, Hi: b, From: class, To: owner})
		}
		next.Ranges = append(next.Ranges, pieces...)
	}
	if !moved {
		return nil, fmt.Errorf("shard: shard %d owns no node in [%d, %d)", from, lo, hi)
	}
	if err := next.Validate(); err != nil {
		return nil, err
	}
	return next, nil
}

// Equal reports structural equality (epoch included).
func (m *PartitionMap) Equal(o *PartitionMap) bool {
	if m == nil || o == nil {
		return m == o
	}
	if m.Epoch != o.Epoch || m.K != o.K || len(m.Ranges) != len(o.Ranges) {
		return false
	}
	for i := range m.Ranges {
		if m.Ranges[i] != o.Ranges[i] {
			return false
		}
	}
	return true
}

// AffectsShard reports whether swapping old for m changes shard s's
// owned node set — the test a worker runs to decide whether a map
// install needs a forced ownership rebuild. Conservative: it compares
// the override lists touching s, never enumerating nodes.
func (m *PartitionMap) AffectsShard(old *PartitionMap, s int) bool {
	touch := func(pm *PartitionMap) []Range {
		var out []Range
		for _, r := range pm.Ranges {
			if r.From == s || r.To == s {
				out = append(out, r)
			}
		}
		return out
	}
	a, b := touch(old), touch(m)
	if len(a) != len(b) {
		return true
	}
	for i := range a {
		if a[i] != b[i] {
			return true
		}
	}
	return false
}

// Binary wire/persistence encoding: magic "OCPM", version byte, epoch
// u64, K u32, range count u32, then per range Lo i32, Hi i32, From u32,
// To u32, all little-endian. Decode validates fully (FuzzPartitionMap
// hammers this path), so a corrupt or adversarial map never installs.

// MagicPMap opens every encoded partition map.
var MagicPMap = [4]byte{'O', 'C', 'P', 'M'}

// VersionPMap is the encoding version this build reads and writes.
const VersionPMap = 1

// maxPMapRanges caps the declared range count when decoding so a
// corrupt header cannot demand an absurd allocation.
const maxPMapRanges = 1 << 20

// Encode returns the canonical binary encoding.
func (m *PartitionMap) Encode() []byte {
	var b bytes.Buffer
	b.Write(MagicPMap[:])
	b.WriteByte(VersionPMap)
	var scratch [8]byte
	binary.LittleEndian.PutUint64(scratch[:], m.Epoch)
	b.Write(scratch[:8])
	binary.LittleEndian.PutUint32(scratch[:4], uint32(m.K))
	b.Write(scratch[:4])
	binary.LittleEndian.PutUint32(scratch[:4], uint32(len(m.Ranges)))
	b.Write(scratch[:4])
	for _, r := range m.Ranges {
		binary.LittleEndian.PutUint32(scratch[:4], uint32(r.Lo))
		b.Write(scratch[:4])
		binary.LittleEndian.PutUint32(scratch[:4], uint32(r.Hi))
		b.Write(scratch[:4])
		binary.LittleEndian.PutUint32(scratch[:4], uint32(r.From))
		b.Write(scratch[:4])
		binary.LittleEndian.PutUint32(scratch[:4], uint32(r.To))
		b.Write(scratch[:4])
	}
	return b.Bytes()
}

// DecodePartitionMap parses and validates an encoded map. Trailing
// bytes, short buffers, bad magic/version and any Validate violation
// (overlapping or gapped ranges included) are errors.
func DecodePartitionMap(data []byte) (*PartitionMap, error) {
	const headerLen = 4 + 1 + 8 + 4 + 4
	if len(data) < headerLen {
		return nil, fmt.Errorf("shard: partition map truncated at %d bytes", len(data))
	}
	if !bytes.Equal(data[:4], MagicPMap[:]) {
		return nil, fmt.Errorf("shard: partition map bad magic %q", data[:4])
	}
	if data[4] != VersionPMap {
		return nil, fmt.Errorf("shard: partition map version %d, this build reads %d", data[4], VersionPMap)
	}
	m := &PartitionMap{
		Epoch: binary.LittleEndian.Uint64(data[5:13]),
		K:     int(int32(binary.LittleEndian.Uint32(data[13:17]))),
	}
	n := binary.LittleEndian.Uint32(data[17:21])
	if n > maxPMapRanges {
		return nil, fmt.Errorf("shard: partition map declares %d ranges (max %d)", n, maxPMapRanges)
	}
	body := data[headerLen:]
	if len(body) != int(n)*16 {
		return nil, fmt.Errorf("shard: partition map body %d bytes, want %d for %d ranges", len(body), int(n)*16, n)
	}
	m.Ranges = make([]Range, n)
	for i := range m.Ranges {
		off := i * 16
		m.Ranges[i] = Range{
			Lo:   int32(binary.LittleEndian.Uint32(body[off:])),
			Hi:   int32(binary.LittleEndian.Uint32(body[off+4:])),
			From: int(int32(binary.LittleEndian.Uint32(body[off+8:]))),
			To:   int(int32(binary.LittleEndian.Uint32(body[off+12:]))),
		}
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}
