package ds

import "math/bits"

// Bitset is a fixed-capacity set of small non-negative integers.
type Bitset struct {
	words []uint64
	n     int // population count, maintained incrementally
}

// NewBitset returns an empty bitset able to hold values in [0, n).
func NewBitset(n int) *Bitset {
	return &Bitset{words: make([]uint64, (n+63)/64)}
}

// Cap returns the capacity the bitset was created with, rounded up to a
// multiple of 64.
func (b *Bitset) Cap() int { return len(b.words) * 64 }

// Len returns the number of set bits.
func (b *Bitset) Len() int { return b.n }

// Contains reports whether i is in the set.
func (b *Bitset) Contains(i int32) bool {
	return b.words[i>>6]&(1<<uint(i&63)) != 0
}

// Add inserts i and reports whether it was newly added.
func (b *Bitset) Add(i int32) bool {
	w, m := i>>6, uint64(1)<<uint(i&63)
	if b.words[w]&m != 0 {
		return false
	}
	b.words[w] |= m
	b.n++
	return true
}

// Remove deletes i and reports whether it was present.
func (b *Bitset) Remove(i int32) bool {
	w, m := i>>6, uint64(1)<<uint(i&63)
	if b.words[w]&m == 0 {
		return false
	}
	b.words[w] &^= m
	b.n--
	return true
}

// Clear removes all elements, keeping capacity.
func (b *Bitset) Clear() {
	for i := range b.words {
		b.words[i] = 0
	}
	b.n = 0
}

// ForEach calls fn for every member in increasing order.
func (b *Bitset) ForEach(fn func(i int32)) {
	for wi, w := range b.words {
		for w != 0 {
			bit := bits.TrailingZeros64(w)
			fn(int32(wi*64 + bit))
			w &= w - 1
		}
	}
}

// Members returns the set's members in increasing order.
func (b *Bitset) Members() []int32 {
	out := make([]int32, 0, b.n)
	b.ForEach(func(i int32) { out = append(out, i) })
	return out
}
