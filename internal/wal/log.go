package wal

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"os"
	"sync"
)

// Log is an open WAL file being appended to. Appends are serialized
// internally; with SyncEveryAppend each record is fsynced before Append
// returns, which is what makes an acknowledged mutation batch durable.
type Log struct {
	mu   sync.Mutex
	f    *os.File
	size int64
	sync bool
	path string
}

// Create creates (truncating) a WAL file at path whose records log
// batches accepted after the snapshot generation baseGen. When
// syncEveryAppend is set, every Append fsyncs before returning.
func Create(path string, baseGen uint64, syncEveryAppend bool) (*Log, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	var head [headerSize]byte
	copy(head[:4], MagicLog[:])
	binary.LittleEndian.PutUint32(head[4:8], VersionLog)
	binary.LittleEndian.PutUint64(head[8:16], baseGen)
	if _, err := f.Write(head[:]); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: writing header: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: syncing header: %w", err)
	}
	return &Log{f: f, size: headerSize, sync: syncEveryAppend, path: path}, nil
}

// Append frames and writes one record, fsyncing when the log was
// created with syncEveryAppend. An error leaves the file position
// untouched logically — the torn tail, if any, is dropped by the next
// recovery scan.
func (l *Log) Append(typ byte, payload []byte) error {
	frame := appendFrame(make([]byte, 0, frameHead+len(payload)), typ, payload)
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return fmt.Errorf("wal: log %s is closed", l.path)
	}
	if _, err := l.f.Write(frame); err != nil {
		return fmt.Errorf("wal: appending record: %w", err)
	}
	if l.sync {
		if err := l.f.Sync(); err != nil {
			return fmt.Errorf("wal: syncing record: %w", err)
		}
	}
	l.size += int64(len(frame))
	return nil
}

// AppendEdgeBatch appends one accepted mutation batch.
func (l *Log) AppendEdgeBatch(b EdgeBatch) error {
	return l.Append(RecEdgeBatch, b.encode())
}

// AppendPublish appends a publish marker for a newly published
// generation.
func (l *Log) AppendPublish(p Publish) error {
	return l.Append(RecPublish, p.encode())
}

// Size returns the current file size in bytes (header included).
func (l *Log) Size() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.size
}

// Path returns the file path the log writes to.
func (l *Log) Path() string { return l.path }

// Sync flushes the log to stable storage — used on close and before a
// segment supersedes the log when per-append syncing is off.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	return l.f.Sync()
}

// Close syncs and closes the log file. Safe to call more than once.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	err := l.f.Sync()
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	l.f = nil
	return err
}

// ReadLogFile reads a WAL file from disk (see ReadLog).
func ReadLogFile(path string) (Header, []Record, int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return Header{}, nil, 0, err
	}
	defer f.Close()
	return ReadLog(bufio.NewReaderSize(f, 1<<20))
}
