// Package xrand provides deterministic seed derivation so that parallel
// workers and multi-stage experiments draw independent, reproducible
// random streams from one user-supplied seed.
package xrand

import "math/rand"

// SplitMix64 advances the SplitMix64 generator once from state x and
// returns the mixed output. It is the standard seed-spreading function
// (Steele et al.): consecutive inputs yield well-distributed outputs.
func SplitMix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	z := x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Derive deterministically combines a base seed with a stream index into
// an independent sub-seed.
func Derive(base int64, stream int64) int64 {
	return int64(SplitMix64(SplitMix64(uint64(base)) ^ uint64(stream)))
}

// New returns a *rand.Rand seeded with Derive(base, stream).
func New(base, stream int64) *rand.Rand {
	return rand.New(rand.NewSource(Derive(base, stream)))
}
