package main

import (
	"errors"
	"io"
	"testing"
	"time"

	"repro/internal/bench"
)

func testConfig() bench.Config {
	return bench.Config{
		Seed:        1,
		Workers:     2,
		Fig2Mus:     []float64{0.2},
		Fig2N:       150,
		Fig3Sizes:   []int{100},
		Fig5Sizes:   []int{150},
		Fig6Ks:      []int{30},
		Fig6N:       150,
		WikiScale:   8,
		ScaleScales: []int{8},
		TimeLimit:   time.Minute,
	}
}

// TestRunOneAllExperiments exercises the dispatch for every experiment
// name on tiny workloads.
func TestRunOneAllExperiments(t *testing.T) {
	cfg := testConfig()
	for _, exp := range []string{"fig2", "fig3", "fig4", "fig5", "fig6", "wiki", "fig2ov", "ablate-c", "ablate-merge", "scale"} {
		for _, csv := range []bool{false, true} {
			if err := runOne(exp, cfg, csv, io.Discard); err != nil {
				t.Fatalf("%s (csv=%v): %v", exp, csv, err)
			}
		}
	}
}

func TestRunOneUnknown(t *testing.T) {
	if err := runOne("nope", testConfig(), false, io.Discard); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRenderFigurePropagatesError(t *testing.T) {
	boom := errors.New("boom")
	if err := renderFigure(nil, boom)(false, io.Discard); err != boom {
		t.Fatalf("err=%v, want boom", err)
	}
}
