package postprocess

// Incremental counterpart of Merge: fold freshly discovered communities
// into a warm cover without re-testing the warm communities against each
// other. The warm cover is the previous generation's cover minus the
// communities a mutation batch touched — those communities were already
// pairwise non-mergeable (Merge ran to fixpoint when that generation was
// built) and did not change, so only pairs involving a fresh community,
// or a warm community that just absorbed one, can newly cross the ρ
// threshold. Candidates are found through the previous generation's
// membership index instead of an index rebuilt over the whole cover, so
// the cost is proportional to the fresh communities' memberships, not to
// the cover.

import (
	"sort"

	"repro/internal/cover"
	"repro/internal/index"
	"repro/internal/metrics"
)

// MergeInto merges fresh communities into the warm cover and returns
// the combined result.
//
// warm lists the carried communities in ascending previous-cover id
// order; warmOldID gives each one's community id in that previous
// cover, and prevIx is that cover's membership index (candidate
// discovery for warm partners runs through it). fresh are the scoped
// run's new discoveries. Input slices are never mutated; warm member
// slices are aliased into the result unless they merge.
//
// The returned cover is arranged for index.Patch: cv.Communities[:kept]
// are the warm communities that survived unchanged, still in ascending
// previous-id order, and cv.Communities[kept:] are new or changed.
// keptOld lists the unchanged communities' previous-cover ids
// (ascending). The caller removes every previous id not in keptOld and
// adds cv.Communities[kept:].
func MergeInto(warm []cover.Community, warmOldID []int32, prevIx *index.Membership, fresh []cover.Community, threshold float64) (cv *cover.Cover, kept int, keptOld []int32) {
	w, f := len(warm), len(fresh)
	// Slot layout: warm occupy [0, w), fresh [w, w+f). members starts as
	// aliases; a slot's slice is replaced (copy-on-write via Union) when
	// it absorbs a partner.
	members := make([]cover.Community, 0, w+f)
	members = append(members, warm...)
	members = append(members, fresh...)
	changed := make([]bool, w+f)
	dead := make([]bool, w+f)
	redirect := make([]int32, w+f)
	for i := range redirect {
		redirect[i] = int32(i)
	}
	// live follows redirect chains with path compression: a slot merged
	// away forwards to its absorber.
	var live func(int32) int32
	live = func(i int32) int32 {
		if redirect[i] != i {
			redirect[i] = live(redirect[i])
		}
		return redirect[i]
	}

	// warmSlot maps a previous-cover community id to its warm slot (-1
	// when that community was dropped as touched).
	warmSlot := make([]int32, prevIx.NumCommunities())
	for i := range warmSlot {
		warmSlot[i] = -1
	}
	for i, oldID := range warmOldID {
		warmSlot[oldID] = int32(i)
	}
	// freshIdx is the inverted index over the fresh communities only —
	// the one piece prevIx cannot supply.
	freshIdx := make(map[int32][]int32)
	for fi, c := range fresh {
		for _, v := range c {
			freshIdx[v] = append(freshIdx[v], int32(w+fi))
		}
	}

	seen := make([]int32, w+f)
	stamp := int32(0)
	// Process each fresh slot; a slot that grows is reprocessed, because
	// its larger member set can reach new candidates (including
	// warm–warm pairs bridged by the absorbed fresh community).
	queue := make([]int32, 0, f)
	for fi := 0; fi < f; fi++ {
		queue = append(queue, int32(w+fi))
	}
	for len(queue) > 0 {
		i := live(queue[0])
		queue = queue[1:]
		if dead[i] {
			continue
		}
		stamp++
		merged := false
		// Candidates sharing at least one node with slot i, through the
		// previous index (warm partners) and the fresh index.
		var cands []int32
		addCand := func(j int32) {
			j = live(j)
			if j != i && !dead[j] && seen[j] != stamp {
				seen[j] = stamp
				cands = append(cands, j)
			}
		}
		for _, v := range members[i] {
			for _, oldID := range prevIx.Communities(v) {
				if ws := warmSlot[oldID]; ws >= 0 {
					addCand(ws)
				}
			}
			for _, fj := range freshIdx[v] {
				addCand(fj)
			}
		}
		sort.Slice(cands, func(a, b int) bool { return cands[a] < cands[b] })
		for _, j := range cands {
			if dead[j] {
				continue
			}
			if metrics.Rho(members[i], members[j]) >= threshold {
				members[i] = members[i].Union(members[j])
				dead[j] = true
				redirect[j] = i
				changed[i] = true
				merged = true
			}
		}
		if merged {
			queue = append(queue, i)
		}
	}

	// Assemble: unchanged warm first (slot order = ascending previous
	// id), then everything new or changed.
	out := make([]cover.Community, 0, w+f)
	for i := 0; i < w; i++ {
		if !dead[i] && !changed[i] {
			out = append(out, members[i])
			keptOld = append(keptOld, warmOldID[i])
		}
	}
	kept = len(out)
	for i := 0; i < w+f; i++ {
		if dead[i] || (i < w && !changed[i]) {
			continue
		}
		out = append(out, members[i])
	}
	return cover.NewCover(out), kept, keptOld
}
