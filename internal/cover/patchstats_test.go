package cover

import (
	"math/rand"
	"testing"
)

// degreeOf returns a membership-degree function over a cover.
func degreeOf(cv *Cover, n int) func(int32) int {
	deg := make([]int, n)
	for _, c := range cv.Communities {
		for _, v := range c {
			if v >= 0 && int(v) < n {
				deg[v]++
			}
		}
	}
	return func(v int32) int {
		if v < 0 || int(v) >= n {
			return 0
		}
		return deg[v]
	}
}

// TestPatchStatsMatchesStatsRandomized: patching the previous stats for
// a removed/added community change must agree exactly with a full Stats
// recomputation, including the MaxMembership-shrink re-scan.
func TestPatchStatsMatchesStatsRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 60; trial++ {
		n := 40 + rng.Intn(80)
		var cs []Community
		for i := 0; i < 2+rng.Intn(8); i++ {
			members := make([]int32, 3+rng.Intn(15))
			for j := range members {
				members[j] = int32(rng.Intn(n))
			}
			cs = append(cs, NewCommunity(members))
		}
		prevCv := NewCover(cs)
		prevStats := prevCv.Stats(n)

		removed := make([]bool, len(cs))
		for i := range removed {
			removed[i] = rng.Intn(3) == 0
		}
		var kept, added []Community
		for ci, c := range cs {
			if !removed[ci] {
				kept = append(kept, c)
			}
		}
		for i := 0; i < rng.Intn(4); i++ {
			members := make([]int32, 3+rng.Intn(15))
			for j := range members {
				members[j] = int32(rng.Intn(n))
			}
			added = append(added, NewCommunity(members))
		}
		newN := n + rng.Intn(15)
		newCv := NewCover(append(append([]Community{}, kept...), added...))

		// Affected nodes: members of removed and added communities.
		seen := map[int32]bool{}
		var affected []int32
		for ci, c := range cs {
			if removed[ci] {
				for _, v := range c {
					if !seen[v] {
						seen[v] = true
						affected = append(affected, v)
					}
				}
			}
		}
		for _, c := range added {
			for _, v := range c {
				if !seen[v] {
					seen[v] = true
					affected = append(affected, v)
				}
			}
		}

		got := PatchStats(prevStats, newCv, newN, affected, degreeOf(prevCv, n), degreeOf(newCv, newN))
		want := newCv.Stats(newN)
		if got != want {
			t.Fatalf("trial %d: PatchStats=%+v, Stats=%+v", trial, got, want)
		}
	}
}

func TestPatchStatsEmptyTransitions(t *testing.T) {
	n := 10
	empty := NewCover(nil)
	full := NewCover([]Community{NewCommunity([]int32{0, 1, 2})})

	// empty -> one community
	got := PatchStats(empty.Stats(n), full, n, []int32{0, 1, 2}, degreeOf(empty, n), degreeOf(full, n))
	if want := full.Stats(n); got != want {
		t.Fatalf("empty->full: got %+v, want %+v", got, want)
	}
	// one community -> empty
	got = PatchStats(full.Stats(n), empty, n, []int32{0, 1, 2}, degreeOf(full, n), degreeOf(empty, n))
	if want := empty.Stats(n); got != want {
		t.Fatalf("full->empty: got %+v, want %+v", got, want)
	}
}
