// Command recoverybench gates the persistence layer's restart path: on
// an LFR graph it compares cold ready-to-serve time (spectral c + full
// OCA run) against crash recovery (mapping the newest snapshot segment
// and replaying the WAL tail through the incremental engine), and
// verifies the recovered state is exactly the pre-crash state — same
// generation, identical cover (NMI 1.0).
//
// The procedure: strip a set of edges from the generated graph, build
// and seal a cover on the stripped graph, then re-add the edges in
// batches through a WAL-logging refresh worker. The store is closed
// without a final seal — a simulated kill — so recovery must do real
// work: segment load plus WAL replay.
//
//	recoverybench [-n 50000] [-batches 8] [-batch-size 16] [-out BENCH_recovery.json]
//
// With -short it runs a scaled-down smoke version (CI): the recovery
// path is exercised and exactness enforced, but the speedup is reported
// without being judged.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/lfr"
	"repro/internal/metrics"
	"repro/internal/persist"
	"repro/internal/refresh"
	"repro/internal/spectral"
)

type benchReport struct {
	Nodes           int     `json:"nodes"`
	Edges           int64   `json:"edges"`
	C               float64 `json:"c"`
	Seed            int64   `json:"seed"`
	Short           bool    `json:"short"`
	ColdMS          float64 `json:"cold_ms"` // spectral c + full OCA run
	RecoveryMS      float64 `json:"recovery_ms"`
	Speedup         float64 `json:"speedup"`
	SegmentBytes    int64   `json:"segment_bytes"`
	WALBytes        int64   `json:"wal_bytes"`
	ReplayedBatches int     `json:"replayed_batches"`
	RecoverySource  string  `json:"recovery_source"`
	Generation      uint64  `json:"generation"`
	NMIVsPreCrash   float64 `json:"nmi_vs_pre_crash"`
	GeneratedUnix   int64   `json:"generated_unix"`
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "recoverybench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("recoverybench", flag.ContinueOnError)
	n := fs.Int("n", 50000, "LFR graph size")
	batches := fs.Int("batches", 8, "mutation batches logged to the WAL tail before the simulated kill")
	batchSize := fs.Int("batch-size", 16, "edges per mutation batch")
	out := fs.String("out", "BENCH_recovery.json", "output report path")
	seed := fs.Int64("seed", 42, "randomness seed (graph, stripping, OCA)")
	mu := fs.Float64("mu", 0.02, "LFR mixing parameter")
	short := fs.Bool("short", false, "CI smoke mode: small graph, exactness enforced, speedup reported but not judged")
	minSpeedup := fs.Float64("min-speedup", 5, "fail unless recovery is this many times faster than the cold ready-to-serve path (ignored with -short)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *short && *n == 50000 {
		*n = 1500
	}

	log.Printf("generating LFR graph: n=%d", *n)
	avgDeg, maxDeg := 16.0, 50
	minCom, maxCom := 20, 40
	if *n < 5000 {
		avgDeg, maxDeg, minCom, maxCom = 12, 30, 20, 60
	}
	bench, err := lfr.Generate(lfr.Params{
		N: *n, AvgDeg: avgDeg, MaxDeg: maxDeg, Mu: *mu,
		MinCom: minCom, MaxCom: maxCom, Seed: *seed,
	})
	if err != nil {
		return fmt.Errorf("lfr.Generate: %w", err)
	}
	final := bench.Graph
	log.Printf("graph ready: %d nodes, %d edges", final.N(), final.M())

	// The cold baseline is everything a cold boot pays before it can
	// serve: deriving c from the spectrum plus the full OCA run.
	coldStart := time.Now()
	c, err := spectral.C(final, spectral.Options{})
	if err != nil {
		return fmt.Errorf("spectral.C: %w", err)
	}
	opt := core.Options{Seed: *seed, C: c, Halting: core.Halting{Patience: 100}}
	if _, err := core.Run(final, opt); err != nil {
		return fmt.Errorf("cold run: %w", err)
	}
	coldMS := millis(time.Since(coldStart))
	log.Printf("cold ready-to-serve: %.0fms (c = %.4f)", coldMS, c)

	// Build the pre-crash state: cover the stripped graph, seal it, then
	// re-add the stripped edges through a WAL-logging worker.
	total := *batches * *batchSize
	var all [][2]int32
	final.Edges(func(u, v int32) bool {
		all = append(all, [2]int32{u, v})
		return true
	})
	if total > len(all) {
		return fmt.Errorf("%d batches x %d edges exceed the graph's %d edges", *batches, *batchSize, len(all))
	}
	rng := rand.New(rand.NewSource(*seed + 1))
	rng.Shuffle(len(all), func(i, j int) { all[i], all[j] = all[j], all[i] })
	tail := all[:total]

	d := graph.NewDelta(final)
	for _, e := range tail {
		if err := d.RemoveEdge(e[0], e[1]); err != nil {
			return err
		}
	}
	start := d.Apply()
	init, err := core.Run(start, opt)
	if err != nil {
		return fmt.Errorf("initial cover: %w", err)
	}

	dir, err := os.MkdirTemp("", "recoverybench-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	// SegmentEvery is pushed out of reach so the mutation batches stay in
	// the WAL: the bench must measure segment load PLUS tail replay, not
	// a conveniently auto-sealed segment.
	store, err := persist.Open(persist.Options{Dir: dir, MaxNodes: final.N(), SegmentEvery: 1 << 32})
	if err != nil {
		return err
	}
	snap := refresh.NewSnapshot(start, init.Cover, init, c, 0)
	snap.Gen = 1
	if err := store.Seal(snap, nil); err != nil {
		return err
	}
	rcfg := refresh.Config{
		OCA: opt, Debounce: -1, IncrementalThreshold: 1,
		LogBatch: store.LogBatch,
		OnSwap: func(sn *refresh.Snapshot) {
			if err := store.OnPublish(sn, nil); err != nil {
				log.Printf("persist: publish: %v", err)
			}
		},
	}
	w := refresh.New(snap, rcfg)
	w.Start()
	for i := 0; i < *batches; i++ {
		if _, _, err := w.Enqueue(tail[i**batchSize:(i+1)**batchSize], nil); err != nil {
			w.Close()
			return fmt.Errorf("batch %d: %w", i, err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Minute)
		if _, err := w.Flush(ctx); err != nil {
			cancel()
			w.Close()
			return fmt.Errorf("flushing batch %d: %w", i, err)
		}
		cancel()
	}
	pre := w.Snapshot()
	w.Close()
	walBytes := store.Stats().WALBytes
	store.Close() // simulated kill: no final seal
	log.Printf("pre-crash state: generation %d, %d WAL batches (%d bytes)", pre.Gen, *batches, walBytes)

	// Recovery: open, scan, map the segment, replay the tail.
	recStart := time.Now()
	store2, err := persist.Open(persist.Options{Dir: dir, MaxNodes: final.N()})
	if err != nil {
		return err
	}
	defer store2.Close()
	st, err := store2.Load()
	if err != nil {
		return fmt.Errorf("recovery load: %w", err)
	}
	got, err := persist.ReplaySingle(st, persist.ReplayConfig{Refresh: refresh.Config{OCA: opt, IncrementalThreshold: 1}})
	if err != nil {
		return fmt.Errorf("recovery replay: %w", err)
	}
	recMS := millis(time.Since(recStart))

	report := benchReport{
		Nodes:           final.N(),
		Edges:           final.M(),
		C:               c,
		Seed:            *seed,
		Short:           *short,
		ColdMS:          coldMS,
		RecoveryMS:      recMS,
		WALBytes:        walBytes,
		ReplayedBatches: st.Stats.ReplayedBatches,
		RecoverySource:  st.Stats.Source,
		Generation:      got.Gen,
		NMIVsPreCrash:   metrics.NMI(got.Cover, pre.Cover, final.N()),
		GeneratedUnix:   time.Now().Unix(),
	}
	if fi, err := os.Stat(filepath.Join(dir, persist.SegmentName(1))); err == nil {
		report.SegmentBytes = fi.Size()
	}
	if recMS > 0 {
		report.Speedup = coldMS / recMS
	}
	log.Printf("recovery: %.0fms (%s, %d batches replayed) — %.1fx vs cold, generation %d, NMI %.4f",
		recMS, report.RecoverySource, report.ReplayedBatches, report.Speedup, got.Gen, report.NMIVsPreCrash)

	failed := false
	if got.Gen != pre.Gen {
		log.Printf("FAIL — recovered generation %d, want %d", got.Gen, pre.Gen)
		failed = true
	}
	if !reflect.DeepEqual(got.Cover.Communities, pre.Cover.Communities) || report.NMIVsPreCrash < 1 {
		log.Printf("FAIL — recovered cover differs from the pre-crash cover (NMI %.6f)", report.NMIVsPreCrash)
		failed = true
	}
	if !got.Graph.HasEdge(tail[0][0], tail[0][1]) {
		log.Print("FAIL — recovered graph lost a replayed edge")
		failed = true
	}
	if !*short && report.Speedup < *minSpeedup {
		log.Printf("FAIL — recovery speedup %.1fx below %.1fx", report.Speedup, *minSpeedup)
		failed = true
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		return err
	}
	log.Printf("report written to %s", *out)
	if failed {
		return fmt.Errorf("gates failed (see log)")
	}
	return nil
}

func millis(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
