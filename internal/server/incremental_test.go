package server

import (
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/refresh"
)

// TestStatsSurfacesRebuildMode: /v1/cover/stats must quote the served
// generation's rebuild mode, including the fastpath after a batch that
// touches no community.
func TestStatsSurfacesRebuildMode(t *testing.T) {
	// Graph: the two overlapping cliques plus an uncovered pendant pair
	// 10–11 (MaxNodes lets the batch name them).
	s, ts := newTestServer(t, Config{
		OCA:                  coreOptionsForTest(),
		RefreshDebounce:      time.Millisecond,
		IncrementalThreshold: 0.6,
		MaxNodes:             16,
	})
	defer s.Close()

	var st statsResponse
	if code := getJSON(t, ts.URL+"/v1/cover/stats", &st); code != http.StatusOK {
		t.Fatalf("stats status = %d", code)
	}
	if st.RebuildMode != refresh.ModeFull {
		t.Fatalf("initial rebuild_mode = %q, want %q", st.RebuildMode, refresh.ModeFull)
	}

	// The server was built from a preloaded cover, which never went
	// through the merge step — the first rebuild must therefore take the
	// full path (restoring the Merge-fixpoint invariant) no matter how
	// small the batch.
	var er EdgesResponse
	if code := postJSON(t, ts.URL+"/v1/edges", EdgesRequest{Add: [][2]int32{{10, 11}}, Wait: true}, &er); code != http.StatusOK {
		t.Fatalf("edges add status = %d", code)
	}
	if code := getJSON(t, ts.URL+"/v1/cover/stats", &st); code != http.StatusOK {
		t.Fatalf("stats status = %d", code)
	}
	if st.RebuildMode != refresh.ModeFull {
		t.Fatalf("first rebuild over a preloaded cover: rebuild_mode = %q, want %q", st.RebuildMode, refresh.ModeFull)
	}

	// From the second rebuild on the engine is live: an addition between
	// uncovered nodes takes the scoped incremental path, and a removal
	// touching no community is the fastpath.
	if code := postJSON(t, ts.URL+"/v1/edges", EdgesRequest{Add: [][2]int32{{12, 13}}, Wait: true}, &er); code != http.StatusOK {
		t.Fatalf("edges add status = %d", code)
	}
	if code := getJSON(t, ts.URL+"/v1/cover/stats", &st); code != http.StatusOK {
		t.Fatalf("stats status = %d", code)
	}
	if st.RebuildMode != refresh.ModeIncremental || st.DirtyNodes == 0 {
		t.Fatalf("after uncovered addition: rebuild_mode = %q dirty_nodes = %d, want incremental with a dirty region", st.RebuildMode, st.DirtyNodes)
	}

	prevComms := st.Communities
	if code := postJSON(t, ts.URL+"/v1/edges", EdgesRequest{Remove: [][2]int32{{12, 13}}, Wait: true}, &er); code != http.StatusOK {
		t.Fatalf("edges remove status = %d", code)
	}
	if code := getJSON(t, ts.URL+"/v1/cover/stats", &st); code != http.StatusOK {
		t.Fatalf("stats status = %d", code)
	}
	if st.RebuildMode != refresh.ModeFastpath {
		t.Fatalf("after uncovered removal: rebuild_mode = %q, want %q", st.RebuildMode, refresh.ModeFastpath)
	}
	if st.Communities != prevComms {
		t.Fatalf("fastpath changed the community count: %d -> %d", prevComms, st.Communities)
	}
}

// TestDebugMetricsRefreshSection: the JSON body carries the per-shard
// refresh gauges once a cover exists.
func TestDebugMetricsRefreshSection(t *testing.T) {
	_, ts := newTestServer(t, Config{OCA: coreOptionsForTest(), RefreshDebounce: time.Millisecond})
	var m metricsResponse
	if code := getJSON(t, ts.URL+"/debug/metrics", &m); code != http.StatusOK {
		t.Fatalf("debug/metrics status = %d", code)
	}
	if len(m.Refresh) != 1 {
		t.Fatalf("refresh section has %d entries, want 1", len(m.Refresh))
	}
	e := m.Refresh[0]
	if e.Shard != 0 || e.Generation == 0 {
		t.Fatalf("refresh entry = %+v, want shard 0 with a generation", e)
	}
	if e.QueueDepth != 0 || e.OldestPendingAgeSeconds != 0 {
		t.Fatalf("idle server reports queue depth %d age %g", e.QueueDepth, e.OldestPendingAgeSeconds)
	}
}

// TestDebugMetricsPrometheusFormat: ?format=prometheus serves the text
// exposition format with the queue-depth and oldest-pending-age gauges.
func TestDebugMetricsPrometheusFormat(t *testing.T) {
	_, ts := newTestServer(t, Config{OCA: coreOptionsForTest(), RefreshDebounce: time.Millisecond})
	// Generate one request's worth of route counters first.
	if code := getJSON(t, ts.URL+"/healthz", nil); code != http.StatusOK {
		t.Fatalf("healthz status = %d", code)
	}
	resp, err := http.Get(ts.URL + "/debug/metrics?format=prometheus")
	if err != nil {
		t.Fatalf("GET prometheus metrics: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type = %q, want text/plain exposition", ct)
	}
	body, _ := io.ReadAll(resp.Body)
	text := string(body)
	for _, want := range []string{
		"# TYPE ocad_shard_queue_depth gauge",
		`ocad_shard_queue_depth{shard="0"} 0`,
		"# TYPE ocad_shard_oldest_pending_age_seconds gauge",
		`ocad_shard_oldest_pending_age_seconds{shard="0"} 0`,
		`ocad_shard_generation{shard="0"} 1`,
		`ocad_http_requests_total{route="GET /healthz"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("prometheus body missing %q\n%s", want, text)
		}
	}
}

// coreOptionsForTest pins c so tests never pay for the power method.
func coreOptionsForTest() core.Options {
	return core.Options{C: 0.5, Seed: 2}
}
