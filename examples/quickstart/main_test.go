package main

import (
	"os"
	"testing"
)

// TestQuickstartSmoke runs the example end-to-end: build the two-clique
// graph, compute c, run OCA, and query the inverted index. main uses
// log.Fatal on any error, which fails the test binary, so reaching the
// end means the whole pipeline worked. Output goes to stdout, which
// `go test` swallows unless -v is set.
func TestQuickstartSmoke(t *testing.T) {
	if os.Getenv("OCA_SKIP_SMOKE") != "" {
		t.Skip("OCA_SKIP_SMOKE set")
	}
	main()
}
