package server

// The live-serving endpoints: graph mutation intake, batch membership
// lookup and streaming bulk export. All three answer from exactly one
// refresh.Snapshot per request, so their responses are internally
// consistent with a single generation even while a rebuild swaps the
// served state underneath them.

import (
	"bufio"
	"encoding/json"
	"errors"
	"net/http"
	"time"

	"repro/internal/refresh"
)

// EdgesRequest is the /v1/edges body: edge endpoints are [u, v] pairs
// of existing node ids. The batch is atomic — one invalid edge rejects
// the whole request and queues nothing.
type EdgesRequest struct {
	Add    [][2]int32 `json:"add,omitempty"`
	Remove [][2]int32 `json:"remove,omitempty"`
	// Wait blocks the request until the mutations are reflected in a
	// published generation (subject to the request deadline) instead of
	// returning 202 immediately.
	Wait bool `json:"wait,omitempty"`
}

// EdgesResponse is the /v1/edges body.
type EdgesResponse struct {
	// Queued is the number of operations accepted.
	Queued int `json:"queued"`
	// Generation: with wait, the generation that includes the batch;
	// without, the generation current at enqueue time (any strictly
	// larger generation includes the batch).
	Generation uint64 `json:"generation"`
	// Applied reports whether the batch is already reflected (wait).
	Applied bool `json:"applied"`
}

func (s *Server) handleEdges(w http.ResponseWriter, r *http.Request) {
	var req EdgesRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxRequestBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge, "request body exceeds %d bytes", tooLarge.Limit)
			return
		}
		writeError(w, http.StatusBadRequest, "invalid edges request: %v", err)
		return
	}
	if len(req.Add)+len(req.Remove) == 0 {
		writeError(w, http.StatusBadRequest, "edges request must add or remove at least one edge")
		return
	}
	// Mutating a lazy server materializes the first cover: there must be
	// a generation 1 for the rebuild to start from.
	if err := s.ensureCover(); err != nil {
		writeError(w, http.StatusInternalServerError, "building cover: %v", err)
		return
	}
	gen, queued, err := s.worker.Enqueue(req.Add, req.Remove)
	switch {
	case errors.Is(err, refresh.ErrBacklogFull):
		writeError(w, http.StatusServiceUnavailable, "refresh backlog full, retry later")
		return
	case errors.Is(err, refresh.ErrClosed):
		writeError(w, http.StatusServiceUnavailable, "server shutting down")
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if !req.Wait {
		writeJSON(w, http.StatusAccepted, EdgesResponse{Queued: queued, Generation: gen})
		return
	}
	snap, err := s.worker.Flush(r.Context())
	if err != nil {
		if errors.Is(err, refresh.ErrClosed) {
			writeError(w, http.StatusServiceUnavailable, "server shutting down")
			return
		}
		// Deadline or client cancellation while waiting: the batch stays
		// queued and will still be applied.
		writeError(w, http.StatusServiceUnavailable, "queued but not yet applied: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, EdgesResponse{Queued: queued, Generation: snap.Gen, Applied: true})
}

// BatchCommunitiesRequest is the POST /v1/nodes/communities body.
type BatchCommunitiesRequest struct {
	// IDs are the nodes to look up; duplicates are answered per
	// occurrence. Requests longer than the server's batch cap are
	// clamped, not rejected.
	IDs []int32 `json:"ids"`
	// Members includes each community's member list in the response.
	Members bool `json:"members,omitempty"`
	// Shared additionally intersects: the communities containing every
	// requested node.
	Shared bool `json:"shared,omitempty"`
}

// batchResult is one per-id answer. Out-of-range ids yield Error
// instead of failing the whole batch.
type batchResult struct {
	Node        int32          `json:"node"`
	Count       int            `json:"count"`
	Communities []communityRef `json:"communities,omitempty"`
	Error       string         `json:"error,omitempty"`
}

// batchCommunitiesResponse is the POST /v1/nodes/communities body. All
// results come from one snapshot: answers for duplicate ids are
// identical and cross-id comparisons are generation-consistent.
type batchCommunitiesResponse struct {
	Generation uint64        `json:"generation"`
	Count      int           `json:"count"`
	Clamped    bool          `json:"clamped,omitempty"`
	Results    []batchResult `json:"results"`
	// Shared (present only when requested) lists the communities
	// containing every requested node.
	Shared *[]int32 `json:"shared,omitempty"`
}

func (s *Server) handleBatchCommunities(w http.ResponseWriter, r *http.Request) {
	var req BatchCommunitiesRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxRequestBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge, "request body exceeds %d bytes", tooLarge.Limit)
			return
		}
		writeError(w, http.StatusBadRequest, "invalid batch request: %v", err)
		return
	}
	if len(req.IDs) == 0 {
		writeError(w, http.StatusBadRequest, "ids must name at least one node")
		return
	}
	snap, err := s.snapshot()
	if err != nil {
		writeError(w, http.StatusInternalServerError, "building cover: %v", err)
		return
	}
	ids := req.IDs
	clamped := false
	if len(ids) > s.cfg.MaxBatchIDs {
		ids = ids[:s.cfg.MaxBatchIDs]
		clamped = true
	}
	resp := batchCommunitiesResponse{
		Generation: snap.Gen,
		Count:      len(ids),
		Clamped:    clamped,
		Results:    make([]batchResult, len(ids)),
	}
	n := snap.Graph.N()
	for i, v := range ids {
		if v < 0 || int(v) >= n {
			resp.Results[i] = batchResult{Node: v, Error: "node out of range"}
			continue
		}
		cis := snap.Index.Communities(v)
		res := batchResult{Node: v, Count: len(cis), Communities: make([]communityRef, len(cis))}
		for j, ci := range cis {
			res.Communities[j] = communityRefFor(snap, ci, req.Members)
		}
		resp.Results[i] = res
	}
	if req.Shared {
		shared := snap.Index.Common(ids)
		if shared == nil {
			shared = []int32{}
		}
		resp.Shared = &shared
	}
	writeJSON(w, http.StatusOK, resp)
}

// exportMeta is the first NDJSON line of /v1/cover/export.
type exportMeta struct {
	Generation  uint64 `json:"generation"`
	Nodes       int    `json:"nodes"`
	Edges       int64  `json:"edges"`
	Communities int    `json:"communities"`
}

// exportCommunity is one community line of /v1/cover/export.
type exportCommunity struct {
	ID      int32   `json:"id"`
	Size    int     `json:"size"`
	Members []int32 `json:"members"`
}

// exportFlushEvery bounds how many communities are encoded between
// context checks and flushes, so a disconnected client stops the
// stream early instead of the handler encoding the whole cover into a
// dead connection.
const exportFlushEvery = 256

// handleExport streams the whole served cover as NDJSON: one meta line
// (generation, dimensions), then one line per community. The snapshot
// is loaded once, so the export is a consistent view of exactly one
// generation even while rebuilds publish newer ones mid-stream. Mounted
// outside the TimeoutHandler, which would buffer the entire body.
func (s *Server) handleExport(w http.ResponseWriter, r *http.Request) {
	snap, err := s.snapshot()
	if err != nil {
		writeError(w, http.StatusInternalServerError, "building cover: %v", err)
		return
	}
	// Clear the connection's write deadline: the export is mounted
	// outside the TimeoutHandler to stream arbitrarily large covers, and
	// the http.Server's WriteTimeout would otherwise sever the stream
	// mid-body. Slow-client backpressure is bounded by the flush loop's
	// context checks instead.
	_ = http.NewResponseController(w).SetWriteDeadline(time.Time{})
	w.Header().Set("Content-Type", "application/x-ndjson")
	bw := bufio.NewWriterSize(w, 64<<10)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(exportMeta{
		Generation:  snap.Gen,
		Nodes:       snap.Graph.N(),
		Edges:       snap.Graph.M(),
		Communities: snap.Cover.Len(),
	}); err != nil {
		return
	}
	flusher, _ := w.(http.Flusher)
	for i, c := range snap.Cover.Communities {
		if i%exportFlushEvery == 0 && i > 0 {
			if bw.Flush() != nil || r.Context().Err() != nil {
				return // client gone; stop encoding
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
		if err := enc.Encode(exportCommunity{ID: int32(i), Size: len(c), Members: c}); err != nil {
			return
		}
	}
	_ = bw.Flush()
}
