package ds

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBucketQueueBasic(t *testing.T) {
	q := NewBucketQueue(10)
	if q.Len() != 0 {
		t.Fatal("fresh queue not empty")
	}
	if _, _, ok := q.Max(); ok {
		t.Fatal("Max on empty queue should report !ok")
	}
	q.Add(7, 3)
	q.Add(8, 5)
	q.Add(9, 1)
	if id, key, ok := q.Max(); !ok || id != 8 || key != 5 {
		t.Fatalf("Max=%d/%d/%v, want 8/5/true", id, key, ok)
	}
	if id, key, ok := q.Min(); !ok || id != 9 || key != 1 {
		t.Fatalf("Min=%d/%d/%v, want 9/1/true", id, key, ok)
	}
	q.Update(9, 10)
	if id, _, _ := q.Max(); id != 9 {
		t.Fatalf("after update Max id=%d, want 9", id)
	}
	q.Remove(9)
	if q.Contains(9) {
		t.Fatal("9 should be gone")
	}
	if k, ok := q.Key(7); !ok || k != 3 {
		t.Fatalf("Key(7)=%d/%v, want 3/true", k, ok)
	}
	if q.Len() != 2 {
		t.Fatalf("len=%d, want 2", q.Len())
	}
}

func TestBucketQueuePanics(t *testing.T) {
	q := NewBucketQueue(4)
	q.Add(1, 2)
	mustPanic(t, "double add", func() { q.Add(1, 3) })
	mustPanic(t, "key out of range", func() { q.Add(2, 5) })
	mustPanic(t, "remove missing", func() { q.Remove(42) })
	mustPanic(t, "update missing", func() { q.Update(42, 1) })
}

func mustPanic(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s: expected panic", name)
		}
	}()
	fn()
}

// TestBucketQueueMatchesNaive cross-checks the queue against a brute-force
// map-based model under random add/remove/update workloads.
func TestBucketQueueMatchesNaive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		maxKey := 1 + rng.Intn(20)
		q := NewBucketQueue(maxKey)
		model := map[int32]int{}
		ids := make([]int32, 0, 64)
		for op := 0; op < 500; op++ {
			switch r := rng.Intn(4); {
			case r == 0 || len(ids) == 0: // add
				id := int32(rng.Intn(1000))
				if _, ok := model[id]; ok {
					continue
				}
				k := rng.Intn(maxKey + 1)
				q.Add(id, k)
				model[id] = k
				ids = append(ids, id)
			case r == 1: // remove
				i := rng.Intn(len(ids))
				id := ids[i]
				q.Remove(id)
				delete(model, id)
				ids[i] = ids[len(ids)-1]
				ids = ids[:len(ids)-1]
			case r == 2: // update
				id := ids[rng.Intn(len(ids))]
				k := rng.Intn(maxKey + 1)
				q.Update(id, k)
				model[id] = k
			default: // query
				if q.Len() != len(model) {
					return false
				}
				if len(model) == 0 {
					continue
				}
				wantMax, wantMin := -1, maxKey+1
				for _, k := range model {
					if k > wantMax {
						wantMax = k
					}
					if k < wantMin {
						wantMin = k
					}
				}
				id, k, ok := q.Max()
				if !ok || k != wantMax || model[id] != k {
					return false
				}
				id, k, ok = q.Min()
				if !ok || k != wantMin || model[id] != k {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkBucketQueueChurn(b *testing.B) {
	q := NewBucketQueue(256)
	for i := int32(0); i < 1024; i++ {
		q.Add(i, int(i)%257%256)
	}
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := int32(rng.Intn(1024))
		k, _ := q.Key(id)
		nk := k + 1
		if nk > 255 {
			nk = 0
		}
		q.Update(id, nk)
		q.Max()
		q.Min()
	}
}
