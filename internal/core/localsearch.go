package core

import (
	"math/rand"

	"repro/internal/graph"
	"repro/internal/search"
)

// gainTol is the minimum fitness improvement for a greedy move. Moves
// must strictly improve L; the tolerance absorbs float round-off and, by
// bounding each step's progress away from zero, guarantees termination.
const gainTol = 1e-9

// localSearch grows a community from seed by greedy optimization of L
// (Section IV): start from the seed plus a random subset of its
// neighborhood, then repeatedly apply the single best addition or
// removal until no move improves the fitness.
//
// st must be empty (or Reset); it is left holding the final community so
// the caller can extract members. Returns the number of greedy steps
// applied and the final fitness.
func localSearch(g *graph.Graph, st *search.State, seed int32, c float64, rng *rand.Rand, opt searchOpts) (steps int, fitness float64) {
	st.Add(seed)
	for _, w := range g.Neighbors(seed) {
		if rng.Float64() < opt.neighborProb {
			if opt.maxSize > 0 && st.Size() >= opt.maxSize {
				break
			}
			st.Add(w)
		}
	}

	// cur is L of the current set, threaded across iterations: each step
	// evaluates L only for the two candidate moves (the chosen move's
	// value becomes the next iteration's cur), instead of re-deriving the
	// baseline and both one-sided differences from scratch.
	cur := L(st.Size(), st.Ein(), c)
	for opt.maxSteps <= 0 || steps < opt.maxSteps {
		s, m := st.Size(), st.Ein()

		bestGain := 0.0
		bestL := 0.0
		bestIsAdd := false
		var bestNode int32
		haveMove := false

		if v, d, ok := st.BestAddition(); ok && (opt.maxSize <= 0 || s < opt.maxSize) {
			la := L(s+1, m+int64(d), c)
			if gain := la - cur; gain > gainTol {
				bestGain, bestL, bestNode, bestIsAdd, haveMove = gain, la, v, true, true
			}
		}
		if s > 1 {
			if u, d, ok := st.WorstMember(); ok {
				lr := L(s-1, m-int64(d), c)
				if gain := lr - cur; gain > gainTol && gain > bestGain {
					bestGain, bestL, bestNode, bestIsAdd, haveMove = gain, lr, u, false, true
				}
			}
		}
		if !haveMove {
			return steps, cur
		}
		if bestIsAdd {
			st.Add(bestNode)
		} else {
			st.Remove(bestNode)
		}
		cur = bestL
		steps++
	}
	return steps, cur
}

// searchOpts are the per-seed knobs of the local search, extracted from
// Options by the driver.
type searchOpts struct {
	neighborProb float64
	maxSteps     int
	maxSize      int
}
