package bench

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/lfr"
	"repro/internal/metrics"
	"repro/internal/postprocess"
	"repro/internal/xrand"
)

// RunFig2Overlap is the extension experiment of DESIGN.md §6: the Fig. 2
// sweep repeated on the overlapping LFR variant (on = 10% of nodes with
// om = 2 memberships), giving the quality comparison genuine ground-
// truth overlap — which the paper's Fig. 2 workload lacks (its text
// concedes "the previous benchmarks do not produce overlapping
// communities").
func RunFig2Overlap(cfg Config) (*Figure, error) {
	cfg = cfg.withDefaults()
	mus := []float64{0.1, 0.2, 0.3, 0.4, 0.5}
	if len(cfg.Fig2Mus) > 0 {
		mus = cfg.Fig2Mus
	}
	p := fig2Params(cfg)
	p.OverlapNodes = p.N / 10
	p.OverlapMemb = 2
	algos := []algorithm{ocaAlgo(cfg.Workers), lfkAlgo(), cfinderFast()}

	fig := &Figure{
		ID: "fig2ov", Title: "Θ against µ on overlapping LFR (on=N/10, om=2)",
		XLabel: "mu", YLabel: "Theta",
		X:    mus,
		Note: fmt.Sprintf("LFR n=%d with planted overlap; extension beyond the paper", p.N),
	}
	ys := make([][]float64, len(algos))
	for i := range ys {
		ys[i] = make([]float64, len(mus))
	}
	for xi, mu := range mus {
		for trial := 0; trial < cfg.Trials; trial++ {
			p := p
			p.Mu = mu
			p.Seed = xrand.Derive(cfg.Seed, int64(11000+100*xi+trial))
			b, err := lfr.Generate(p)
			if err != nil {
				return nil, fmt.Errorf("fig2ov µ=%g: %w", mu, err)
			}
			for ai, algo := range algos {
				cv, err := algo.run(b.Graph, xrand.Derive(cfg.Seed, int64(12000+100*xi+10*ai+trial)))
				if err != nil {
					return nil, fmt.Errorf("fig2ov µ=%g %s: %w", mu, algo.name, err)
				}
				cv = postprocessAll(b.Graph, cv)
				ys[ai][xi] += metrics.Theta(b.Communities, cv) / float64(cfg.Trials)
			}
			cfg.logf("fig2ov: µ=%.2f trial %d done", mu, trial)
		}
	}
	for ai, algo := range algos {
		fig.Series = append(fig.Series, Series{Name: algo.name, Y: ys[ai]})
	}
	return fig, nil
}

// RunAblateC sweeps the inner-product parameter c and reports OCA's Θ on
// a fixed LFR workload, with the spectral choice c = −1/λmin marked as
// the final point. It justifies the paper's Section II argument that
// larger admissible c separates communities better.
func RunAblateC(cfg Config) (*Figure, error) {
	cfg = cfg.withDefaults()
	p := fig2Params(cfg)
	p.Mu = 0.3
	cs := []float64{0.05, 0.1, 0.2, 0.4, 0.6, 0.8, 0.95}

	fig := &Figure{
		ID: "ablate-c", Title: "OCA quality vs fixed c (last row: computed c = -1/λmin)",
		XLabel: "c", YLabel: "Theta",
		Note: fmt.Sprintf("LFR n=%d µ=0.3; ablation beyond the paper", p.N),
	}
	thetaY := make([]float64, 0, len(cs)+1)
	for xi, c := range cs {
		theta := 0.0
		for trial := 0; trial < cfg.Trials; trial++ {
			th, _, err := ocaThetaWithC(cfg, p, c, int64(13000+100*xi+trial))
			if err != nil {
				return nil, fmt.Errorf("ablate-c c=%g: %w", c, err)
			}
			theta += th / float64(cfg.Trials)
		}
		fig.X = append(fig.X, c)
		thetaY = append(thetaY, theta)
		cfg.logf("ablate-c: c=%.2f Θ=%.3f", c, theta)
	}
	// Computed c.
	theta, usedC := 0.0, 0.0
	for trial := 0; trial < cfg.Trials; trial++ {
		th, c, err := ocaThetaWithC(cfg, p, 0, int64(13900+trial))
		if err != nil {
			return nil, fmt.Errorf("ablate-c computed: %w", err)
		}
		theta += th / float64(cfg.Trials)
		usedC = c
	}
	fig.X = append(fig.X, usedC)
	thetaY = append(thetaY, theta)
	cfg.logf("ablate-c: computed c=%.3f Θ=%.3f", usedC, theta)
	fig.Series = []Series{{Name: "OCA", Y: thetaY}}
	return fig, nil
}

// ocaThetaWithC generates an LFR instance, runs OCA with the given c
// (0 = computed) and returns post-processed Θ and the c actually used.
func ocaThetaWithC(cfg Config, p lfr.Params, c float64, stream int64) (float64, float64, error) {
	p.Seed = xrand.Derive(cfg.Seed, stream)
	b, err := lfr.Generate(p)
	if err != nil {
		return 0, 0, err
	}
	res, err := core.Run(b.Graph, core.Options{
		Seed: xrand.Derive(cfg.Seed, stream+1), Workers: cfg.Workers,
		C: c, DisableMerge: true,
	})
	if err != nil {
		return 0, 0, err
	}
	cv := postprocessAll(b.Graph, res.Cover)
	return metrics.Theta(b.Communities, cv), res.C, nil
}

// RunAblateMerge sweeps the ρ-merge threshold and reports OCA's Θ and
// the community-count inflation (found/planted) on a fixed LFR workload.
// It quantifies how much of OCA's quality comes from the Section IV
// post-processing; ∞ (no merging) is the final point.
func RunAblateMerge(cfg Config) (*Figure, error) {
	cfg = cfg.withDefaults()
	p := fig2Params(cfg)
	p.Mu = 0.3
	thresholds := []float64{0.2, 0.35, 0.5, 0.65, 0.8, 0.95}

	fig := &Figure{
		ID: "ablate-merge", Title: "OCA quality vs merge threshold τ (last row: merging off)",
		XLabel: "tau", YLabel: "Theta / inflation",
		Note: fmt.Sprintf("LFR n=%d µ=0.3; inflation = found / planted communities", p.N),
	}
	var thetaY, inflateY []float64
	run := func(tau float64, off bool, stream int64) error {
		theta, inflate := 0.0, 0.0
		for trial := 0; trial < cfg.Trials; trial++ {
			pp := p
			pp.Seed = xrand.Derive(cfg.Seed, stream+int64(trial))
			b, err := lfr.Generate(pp)
			if err != nil {
				return err
			}
			res, err := core.Run(b.Graph, core.Options{
				Seed: xrand.Derive(cfg.Seed, stream+100+int64(trial)), Workers: cfg.Workers,
				DisableMerge: true,
			})
			if err != nil {
				return err
			}
			cv := res.Cover
			if !off {
				cv = postprocess.Merge(cv, tau)
			}
			cv = postprocess.AssignOrphans(b.Graph, cv, postprocess.OrphanOptions{Rounds: 3})
			theta += metrics.Theta(b.Communities, cv) / float64(cfg.Trials)
			inflate += float64(cv.Len()) / float64(b.Communities.Len()) / float64(cfg.Trials)
		}
		thetaY = append(thetaY, theta)
		inflateY = append(inflateY, inflate)
		cfg.logf("ablate-merge: τ=%.2f off=%v Θ=%.3f inflation=%.2f", tau, off, theta, inflate)
		return nil
	}
	for xi, tau := range thresholds {
		if err := run(tau, false, int64(14000+100*xi)); err != nil {
			return nil, fmt.Errorf("ablate-merge τ=%g: %w", tau, err)
		}
		fig.X = append(fig.X, tau)
	}
	if err := run(0, true, 14900); err != nil {
		return nil, fmt.Errorf("ablate-merge off: %w", err)
	}
	fig.X = append(fig.X, math.Inf(1))
	fig.Series = []Series{
		{Name: "Theta", Y: thetaY},
		{Name: "inflation", Y: inflateY},
	}
	return fig, nil
}
