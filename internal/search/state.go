// Package search provides the incremental node-set state both greedy
// community searches (OCA and the LFK baseline) are built on. It
// maintains, under single-node additions and removals:
//
//   - the member set S,
//   - Ein(S), the number of edges inside S,
//   - vol(S), the sum of member degrees,
//   - d_S(v) for every member and frontier node (neighbors of v inside S),
//   - the frontier (non-members adjacent to S),
//   - two bucket queues answering "frontier node with max d_S" and
//     "member with min d_S" in amortized O(1).
//
// Every operation costs O(deg(v)) for the touched node v.
package search

import (
	"fmt"
	"sort"

	"repro/internal/ds"
	"repro/internal/graph"
)

// State is the incremental view of a node set S in a fixed graph.
// Not safe for concurrent use; parallel searches each own a State.
type State struct {
	g *graph.Graph

	member map[int32]struct{}
	d      map[int32]int32 // d_S(v) for v in S or adjacent to S

	ein int64
	vol int64

	frontierQ *ds.BucketQueue // non-members with d_S > 0, keyed by d_S
	memberQ   *ds.BucketQueue // members, keyed by d_S
}

// NewState returns an empty State over g. maxDegree must be at least the
// maximum degree of g (pass g.MaxDegree(); it is a parameter so callers
// can compute it once per graph rather than once per seed).
func NewState(g *graph.Graph, maxDegree int) *State {
	return &State{
		g:         g,
		member:    make(map[int32]struct{}),
		d:         make(map[int32]int32),
		frontierQ: ds.NewBucketQueue(maxDegree),
		memberQ:   ds.NewBucketQueue(maxDegree),
	}
}

// Graph returns the graph the state was built over. Pools that survive
// a live graph swap use it to detect states bound to a stale snapshot.
func (s *State) Graph() *graph.Graph { return s.g }

// Size returns |S|.
func (s *State) Size() int { return len(s.member) }

// Ein returns the number of edges with both endpoints in S.
func (s *State) Ein() int64 { return s.ein }

// Volume returns the sum of degrees of the members of S.
func (s *State) Volume() int64 { return s.vol }

// Contains reports whether v is in S.
func (s *State) Contains(v int32) bool {
	_, ok := s.member[v]
	return ok
}

// DS returns d_S(v), the number of neighbors of v inside S. Valid for
// any node (0 for nodes not adjacent to S).
func (s *State) DS(v int32) int32 { return s.d[v] }

// FrontierLen returns the number of non-members adjacent to S.
func (s *State) FrontierLen() int { return s.frontierQ.Len() }

// Add inserts v into S. It panics if v is already a member — the greedy
// drivers must never do that, and silent acceptance would corrupt Ein.
func (s *State) Add(v int32) {
	if _, ok := s.member[v]; ok {
		panic(fmt.Sprintf("search: Add(%d) already a member", v))
	}
	dv := s.d[v]
	s.member[v] = struct{}{}
	s.ein += int64(dv)
	s.vol += int64(s.g.Degree(v))
	if s.frontierQ.Contains(v) {
		s.frontierQ.Remove(v)
	}
	s.memberQ.Add(v, int(dv))
	for _, w := range s.g.Neighbors(v) {
		dw := s.d[w] + 1
		s.d[w] = dw
		if _, isMember := s.member[w]; isMember {
			s.memberQ.Update(w, int(dw))
		} else if dw == 1 {
			s.frontierQ.Add(w, 1)
		} else {
			s.frontierQ.Update(w, int(dw))
		}
	}
}

// Remove deletes v from S. It panics if v is not a member.
func (s *State) Remove(v int32) {
	if _, ok := s.member[v]; !ok {
		panic(fmt.Sprintf("search: Remove(%d) not a member", v))
	}
	delete(s.member, v)
	dv := s.d[v]
	s.ein -= int64(dv)
	s.vol -= int64(s.g.Degree(v))
	s.memberQ.Remove(v)
	if dv > 0 {
		s.frontierQ.Add(v, int(dv))
	} else {
		delete(s.d, v)
	}
	for _, w := range s.g.Neighbors(v) {
		dw := s.d[w] - 1
		if _, isMember := s.member[w]; isMember {
			s.d[w] = dw
			s.memberQ.Update(w, int(dw))
			continue
		}
		if dw == 0 {
			delete(s.d, w)
			s.frontierQ.Remove(w)
		} else {
			s.d[w] = dw
			s.frontierQ.Update(w, int(dw))
		}
	}
}

// BestAddition returns a frontier node with maximal d_S. ok is false when
// the frontier is empty.
func (s *State) BestAddition() (v int32, dS int32, ok bool) {
	id, key, ok := s.frontierQ.Max()
	return id, int32(key), ok
}

// WorstMember returns a member with minimal d_S. ok is false when S is
// empty.
func (s *State) WorstMember() (v int32, dS int32, ok bool) {
	id, key, ok := s.memberQ.Min()
	return id, int32(key), ok
}

// ForEachFrontier calls fn for every non-member adjacent to S with its
// current d_S. Iteration order is unspecified; callers needing
// determinism must impose their own tie-breaking.
func (s *State) ForEachFrontier(fn func(v int32, dS int32)) {
	for v, dv := range s.d {
		if _, isMember := s.member[v]; !isMember {
			fn(v, dv)
		}
	}
}

// ForEachMember calls fn for every member with its current d_S.
// Iteration order is unspecified.
func (s *State) ForEachMember(fn func(v int32, dS int32)) {
	for v := range s.member {
		fn(v, s.d[v])
	}
}

// Members returns the members of S sorted ascending.
func (s *State) Members() []int32 {
	out := make([]int32, 0, len(s.member))
	for v := range s.member {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Reset empties the state for reuse by the next seed, keeping the graph
// and queue capacity.
func (s *State) Reset() {
	for v := range s.member {
		s.memberQ.Remove(v)
	}
	for v := range s.d {
		if s.frontierQ.Contains(v) {
			s.frontierQ.Remove(v)
		}
	}
	s.member = make(map[int32]struct{})
	s.d = make(map[int32]int32)
	s.ein = 0
	s.vol = 0
}
