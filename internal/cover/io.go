package cover

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Write serializes the cover as text: one community per line, members as
// space-separated node ids. Lines starting with '#' are comments.
func Write(w io.Writer, cv *Cover) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := fmt.Fprintf(bw, "# communities %d\n", cv.Len()); err != nil {
		return err
	}
	for _, c := range cv.Communities {
		for i, v := range c {
			if i > 0 {
				if err := bw.WriteByte(' '); err != nil {
					return err
				}
			}
			if _, err := bw.WriteString(strconv.Itoa(int(v))); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read parses the format written by Write. Blank lines and '#' comments
// are skipped; members on each line are sorted and deduplicated.
func Read(r io.Reader) (*Cover, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	var cs []Community
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		members := make([]int32, 0, len(fields))
		for _, f := range fields {
			v, err := strconv.ParseInt(f, 10, 32)
			if err != nil {
				return nil, fmt.Errorf("cover: line %d: bad node id %q: %v", lineNo, f, err)
			}
			if v < 0 {
				return nil, fmt.Errorf("cover: line %d: negative node id %d", lineNo, v)
			}
			members = append(members, int32(v))
		}
		cs = append(cs, NewCommunity(members))
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("cover: reading: %v", err)
	}
	return NewCover(cs), nil
}
