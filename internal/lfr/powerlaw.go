package lfr

import (
	"math"
	"math/rand"
)

// powerLaw samples integers from a truncated continuous power law with
// density ∝ x^(-exp) on [xmin, xmax], rounded to the nearest integer and
// clamped to [1, xmax]. Inverse-transform sampling keeps it O(1) per draw.
type powerLaw struct {
	exp        float64
	xmin, xmax float64
}

// sample draws one value.
func (p powerLaw) sample(rng *rand.Rand) int {
	u := rng.Float64()
	var x float64
	if math.Abs(p.exp-1) < 1e-9 {
		// F^{-1}(u) = xmin · (xmax/xmin)^u
		x = p.xmin * math.Pow(p.xmax/p.xmin, u)
	} else {
		e := 1 - p.exp
		a := math.Pow(p.xmin, e)
		b := math.Pow(p.xmax, e)
		x = math.Pow(a+u*(b-a), 1/e)
	}
	k := int(math.Round(x))
	if k < 1 {
		k = 1
	}
	if k > int(p.xmax) {
		k = int(p.xmax)
	}
	return k
}

// mean returns the expectation of the continuous truncated power law.
func (p powerLaw) mean() float64 {
	if p.xmax-p.xmin < 1e-12 {
		return p.xmax // degenerate point mass
	}
	t := p.exp
	if math.Abs(t-1) < 1e-9 {
		// density ∝ 1/x: Z = ln(xmax/xmin); E = (xmax-xmin)/Z
		z := math.Log(p.xmax / p.xmin)
		return (p.xmax - p.xmin) / z
	}
	if math.Abs(t-2) < 1e-9 {
		// Z = xmin^{-1} - xmax^{-1}; E = ln(xmax/xmin)/Z
		z := 1/p.xmin - 1/p.xmax
		return math.Log(p.xmax/p.xmin) / z
	}
	// General: E = ((1-t)/(2-t)) · (xmax^{2-t}-xmin^{2-t})/(xmax^{1-t}-xmin^{1-t})
	num := math.Pow(p.xmax, 2-t) - math.Pow(p.xmin, 2-t)
	den := math.Pow(p.xmax, 1-t) - math.Pow(p.xmin, 1-t)
	return (1 - t) / (2 - t) * num / den
}

// solveXmin finds xmin ∈ [1, xmax] such that the truncated power law with
// the given exponent and cutoff has the target mean, by bisection (the
// mean is strictly increasing in xmin). Returns xmax when even xmin=xmax
// cannot reach the target (the caller then degenerates to a constant).
func solveXmin(exp, xmax, targetMean float64) float64 {
	lo, hi := 1.0, xmax
	if (powerLaw{exp, hi, xmax}).mean() < targetMean {
		return xmax
	}
	if (powerLaw{exp, lo, xmax}).mean() > targetMean {
		return lo
	}
	for i := 0; i < 100; i++ {
		mid := (lo + hi) / 2
		if (powerLaw{exp, mid, xmax}).mean() < targetMean {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}
