package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteEdgeList writes the graph as a plain text edge list: a header line
// "# nodes <n> edges <m>" followed by one "u v" pair per line with u < v.
// The format round-trips through ReadEdgeList.
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := fmt.Fprintf(bw, "# nodes %d edges %d\n", g.N(), g.M()); err != nil {
		return err
	}
	var writeErr error
	g.Edges(func(u, v int32) bool {
		if _, err := fmt.Fprintf(bw, "%d %d\n", u, v); err != nil {
			writeErr = err
			return false
		}
		return true
	})
	if writeErr != nil {
		return writeErr
	}
	return bw.Flush()
}

// ReadLimits bound what an edge-list parse will materialize. A text
// file is tiny compared to the graph it can declare ("# nodes 2000000000"
// or a single edge naming node 2^31-1 both demand a multi-gigabyte
// offsets array), so parsers fed from untrusted input should cap both
// dimensions. Zero fields mean unlimited.
type ReadLimits struct {
	// MaxNodes rejects inputs whose declared or implied node count
	// exceeds it.
	MaxNodes int
	// MaxEdges rejects inputs with more edge lines than it.
	MaxEdges int64
}

// ReadEdgeList parses the format written by WriteEdgeList. Lines starting
// with '#' other than the header, and blank lines, are ignored. If no
// header is present the node count is inferred as max id + 1.
func ReadEdgeList(r io.Reader) (*Graph, error) {
	return ReadEdgeListLimits(r, ReadLimits{})
}

// ReadEdgeListLimits is ReadEdgeList with hard caps on the declared or
// implied graph size, for parsing untrusted input with bounded memory.
func ReadEdgeListLimits(r io.Reader, lim ReadLimits) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	n := -1
	var pairs [][2]int32
	maxID := int32(-1)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			var hn int
			var hm int64
			if _, err := fmt.Sscanf(line, "# nodes %d edges %d", &hn, &hm); err == nil {
				if lim.MaxNodes > 0 && hn > lim.MaxNodes {
					return nil, fmt.Errorf("graph: line %d: declared node count %d exceeds limit %d", lineNo, hn, lim.MaxNodes)
				}
				n = hn
			}
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("graph: line %d: want two node ids, got %q", lineNo, line)
		}
		u, err := strconv.ParseInt(fields[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad node id %q: %v", lineNo, fields[0], err)
		}
		v, err := strconv.ParseInt(fields[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad node id %q: %v", lineNo, fields[1], err)
		}
		if u < 0 || v < 0 {
			return nil, fmt.Errorf("graph: line %d: negative node id", lineNo)
		}
		if lim.MaxNodes > 0 && (u >= int64(lim.MaxNodes) || v >= int64(lim.MaxNodes)) {
			return nil, fmt.Errorf("graph: line %d: node id exceeds limit %d", lineNo, lim.MaxNodes)
		}
		if lim.MaxEdges > 0 && int64(len(pairs)) >= lim.MaxEdges {
			return nil, fmt.Errorf("graph: line %d: edge count exceeds limit %d", lineNo, lim.MaxEdges)
		}
		iu, iv := int32(u), int32(v)
		if iu > maxID {
			maxID = iu
		}
		if iv > maxID {
			maxID = iv
		}
		pairs = append(pairs, [2]int32{iu, iv})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: reading edge list: %v", err)
	}
	if n < 0 {
		n = int(maxID) + 1
	}
	if int(maxID) >= n {
		return nil, fmt.Errorf("graph: node id %d exceeds declared node count %d", maxID, n)
	}
	return FromEdges(n, pairs), nil
}
