package refresh

import (
	"context"
	"math"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/cover"
	"repro/internal/graph"
	"repro/internal/spectral"
)

// TestWorkerGrowsNodeSet verifies the growth path: with MaxNodes above
// the initial size, added edges naming new ids extend the graph at the
// next rebuild (intermediate ids materialize as isolated nodes), while
// ids at or past the cap stay rejected.
func TestWorkerGrowsNodeSet(t *testing.T) {
	w := newTestWorker(t, Config{MaxNodes: 20})
	if _, queued, err := w.Enqueue([][2]int32{{0, 12}}, nil); err != nil || queued != 1 {
		t.Fatalf("growth enqueue: queued=%d err=%v", queued, err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	snap, err := w.Flush(ctx)
	if err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if snap.Graph.N() != 13 {
		t.Fatalf("grown graph has %d nodes, want 13", snap.Graph.N())
	}
	if !snap.Graph.HasEdge(0, 12) {
		t.Error("grown graph is missing the new edge {0, 12}")
	}
	if snap.Graph.Degree(11) != 0 {
		t.Error("intermediate grown node 11 should be isolated")
	}
	if snap.Index.N() != 13 {
		t.Errorf("index covers %d nodes, want 13", snap.Index.N())
	}

	// Removals may name pending-growth nodes within the same batch.
	if _, _, err := w.Enqueue([][2]int32{{1, 15}}, [][2]int32{{15, 1}}); err != nil {
		t.Fatalf("grow-then-remove batch: %v", err)
	}
	if snap, err = w.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	if snap.Graph.N() != 16 || snap.Graph.HasEdge(1, 15) {
		t.Errorf("grow-then-remove: n=%d HasEdge(1,15)=%v, want 16 nodes without the edge", snap.Graph.N(), snap.Graph.HasEdge(1, 15))
	}

	// The cap is a hard ceiling; removals never reach unknown ids.
	if _, _, err := w.Enqueue([][2]int32{{0, 20}}, nil); err == nil {
		t.Error("add past MaxNodes accepted")
	}
	if _, _, err := w.Enqueue(nil, [][2]int32{{0, 18}}); err == nil {
		t.Error("remove naming an unmaterialized id accepted")
	}
}

// TestRederiveCOnDrift pins a deliberately wrong c and sets a tiny
// drift threshold: the first mutation-triggered rebuild must re-derive
// c from the current spectrum, and later rebuilds must keep following
// the re-derived value instead of snapping back to the configured one.
func TestRederiveCOnDrift(t *testing.T) {
	const pinned = 0.5
	w := newTestWorker(t, Config{
		OCA:            core.Options{Seed: 1, C: pinned},
		RederiveCAfter: 0.01, // any mutation exceeds 1% of ~30 edges
	})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	if _, _, err := w.Enqueue([][2]int32{{0, 9}}, nil); err != nil {
		t.Fatal(err)
	}
	snap, err := w.Flush(ctx)
	if err != nil {
		t.Fatal(err)
	}
	want, err := spectral.C(snap.Graph, spectral.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(snap.C-want) > 1e-6 || snap.C == pinned {
		t.Fatalf("post-drift c = %g, want re-derived %g (pinned was %g)", snap.C, want, pinned)
	}

	// A follow-up rebuild under the threshold keeps the re-derived c.
	if _, _, err := w.Enqueue(nil, [][2]int32{{0, 9}}); err != nil {
		t.Fatal(err)
	}
	snap2, err := w.Flush(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if snap2.C == pinned {
		t.Errorf("second rebuild snapped back to the configured c=%g", pinned)
	}
}

// TestRederiveDisabledKeepsPinnedC is the control: with the threshold
// unset the pinned value survives arbitrarily many rebuilds.
func TestRederiveDisabledKeepsPinnedC(t *testing.T) {
	w := newTestWorker(t, Config{OCA: core.Options{Seed: 1, C: 0.5}})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if _, _, err := w.Enqueue([][2]int32{{0, 9}}, nil); err != nil {
		t.Fatal(err)
	}
	snap, err := w.Flush(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if snap.C != 0.5 {
		t.Errorf("c drifted to %g with re-derivation disabled", snap.C)
	}
}

// TestBuildSnapshotHook checks the assembly hook: rebuilds publish
// whatever the hook returns (here: a filtered cover with attached Aux),
// which is how the shard layer drops ghost-only communities and ships
// its translation tables.
func TestBuildSnapshotHook(t *testing.T) {
	type meta struct{ communities int }
	cfg := Config{
		OCA:      core.Options{Seed: 1, C: 0.5},
		Debounce: time.Millisecond,
		BuildSnapshot: func(g *graph.Graph, cv *cover.Cover, res *core.Result, c float64, d time.Duration) *Snapshot {
			s := NewSnapshot(g, cv, res, c, d)
			s.Aux = &meta{communities: cv.Len()}
			return s
		},
	}
	w := New(testSnapshot(t, twoCliques(), cfg.OCA), cfg)
	w.Start()
	t.Cleanup(w.Close)
	if _, _, err := w.Enqueue([][2]int32{{0, 9}}, nil); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	snap, err := w.Flush(ctx)
	if err != nil {
		t.Fatal(err)
	}
	m, ok := snap.Aux.(*meta)
	if !ok || m.communities != snap.Cover.Len() {
		t.Errorf("Aux = %#v, want hook-attached meta matching the cover", snap.Aux)
	}
}
