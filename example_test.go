package repro_test

import (
	"fmt"

	"repro"
)

// ExampleOCA runs the paper's algorithm on two cliques that share two
// members and prints the overlapping communities it finds.
func ExampleOCA() {
	// Two K6 cliques sharing nodes 4 and 5.
	b := repro.NewGraphBuilder(10)
	for i := int32(0); i < 6; i++ {
		for j := i + 1; j < 6; j++ {
			b.AddEdge(i, j)
		}
	}
	for i := int32(4); i < 10; i++ {
		for j := i + 1; j < 10; j++ {
			b.AddEdge(i, j)
		}
	}
	g := b.Build()

	res, err := repro.OCA(g, repro.OCAOptions{Seed: 42})
	if err != nil {
		panic(err)
	}
	res.Cover.SortBySize()
	for _, community := range res.Cover.Communities {
		fmt.Println(community)
	}
	// Output:
	// [0 1 2 3 4 5]
	// [4 5 6 7 8 9]
}

// ExampleRho evaluates the paper's community similarity (eq. V.1).
func ExampleRho() {
	a := repro.NewCommunity([]int32{1, 2, 3})
	b := repro.NewCommunity([]int32{2, 3, 4})
	fmt.Printf("%.1f\n", repro.Rho(a, b))
	// Output:
	// 0.5
}

// ExampleTheta compares an observed community structure against a
// reference one (eq. V.2).
func ExampleTheta() {
	ref := &repro.Cover{Communities: []repro.Community{
		repro.NewCommunity([]int32{0, 1, 2}),
		repro.NewCommunity([]int32{3, 4, 5}),
	}}
	obs := &repro.Cover{Communities: []repro.Community{
		repro.NewCommunity([]int32{0, 1, 2}), // exact match
		repro.NewCommunity([]int32{3, 4}),    // ρ = 2/3
	}}
	fmt.Printf("%.3f\n", repro.Theta(ref, obs))
	// Output:
	// 0.833
}

// ExampleFitness evaluates the directed-Laplacian fitness of a set with
// s members and m internal edges.
func ExampleFitness() {
	c := 0.5
	fmt.Printf("singleton: %.3f\n", repro.Fitness(1, 0, c))
	fmt.Printf("edge:      %.3f\n", repro.Fitness(2, 1, c))
	fmt.Printf("triangle:  %.3f\n", repro.Fitness(3, 3, c))
	// Output:
	// singleton: 1.000
	// edge:      1.586
	// triangle:  2.326
}

// ExampleSummarize compresses a graph of two cliques joined by one edge
// into three summary entries and reconstructs it exactly.
func ExampleSummarize() {
	b := repro.NewGraphBuilder(12)
	for i := int32(0); i < 6; i++ {
		for j := i + 1; j < 6; j++ {
			b.AddEdge(i, j)
			b.AddEdge(6+i, 6+j)
		}
	}
	b.AddEdge(5, 6)
	g := b.Build()

	cv := &repro.Cover{Communities: []repro.Community{
		repro.NewCommunity([]int32{0, 1, 2, 3, 4, 5}),
		repro.NewCommunity([]int32{6, 7, 8, 9, 10, 11}),
	}}
	s, err := repro.Summarize(g, cv)
	if err != nil {
		panic(err)
	}
	fmt.Printf("edges=%d cost=%d\n", g.M(), s.Cost())
	g2 := repro.ReconstructGraph(s)
	fmt.Printf("lossless=%v\n", g2.M() == g.M())
	// Output:
	// edges=31 cost=3
	// lossless=true
}
