package server

// The seeded-search hot path: a generation-keyed result cache with
// singleflight coalescing and publish-time carry-forward.
//
// The cache key includes the (shard, generation) the search ran over,
// so invalidation on publish is free — entries of a superseded
// generation simply stop being hit and age out of the size-bounded LRU
// (a publish also prunes them eagerly). N concurrent requests for the
// same (seed, params, generation) run ONE underlying search: the first
// becomes the flight leader, the rest wait on its result instead of
// burning pool workers on identical work.
//
// On fastpath and incremental publishes the previous generation's
// entries are not discarded wholesale: refresh.Snapshot.Dirty says
// which nodes the rebuild may answer differently, so an entry whose
// seed and result avoid the dirty region is re-keyed to the new
// generation (its community is still locally optimal on the new graph —
// the PR 4 dirty-region argument). A ρ-similarity spot check
// (metrics.Rho, the paper's eq. V.1) recomputes a sample of the
// carried entries fresh and drops the whole carry when similarity falls
// below the configured floor, bounding how far heuristic reuse can
// drift from fresh computation.

import (
	"container/list"
	"context"
	"math/rand"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/cover"
	"repro/internal/metrics"
	"repro/internal/refresh"
	"repro/internal/search"
	"repro/internal/shard"
)

const (
	// defaultSearchCacheSize bounds the cache when Config.SearchCacheSize
	// is 0. At ~100 bytes + two member slices per entry this is a few MiB
	// — sized for hot-seed working sets, not whole graphs.
	defaultSearchCacheSize = 4096
	// defaultSearchCacheRho is the carry-forward spot-check floor when
	// Config.SearchCacheRho is 0: carried entries must be ρ-similar to a
	// fresh recomputation at least this much or the carry is dropped.
	defaultSearchCacheRho = 0.95
	// carrySpotChecks is how many carried entries each publish recomputes
	// fresh for the ρ validation. The checks run on the rebuild
	// goroutine, so they trade a small publish delay for a similarity
	// bound on every carried answer.
	carrySpotChecks = 2
)

// searchKey identifies one cacheable search: the (shard, generation)
// the search resolves to, the global seed, and every effective
// parameter after server-side clamping. RNGSeed is the request's own
// value: explicit seeds key deterministic replays, and 0 groups all
// "server picks a stream" requests for a seed onto one shared result —
// the hot-seed case the cache exists for.
type searchKey struct {
	shard   int
	gen     uint64
	seed    int32
	c       float64
	prob    float64
	steps   int
	maxSize int
	rngSeed int64
}

// searchEntry is one immutable cached result: the rendered response
// (global member ids) plus what carry-forward needs to re-validate it —
// the result in the search graph's own id space, the seed's local id,
// the rng stream actually used, and the effective options. Entries are
// never mutated after insertion; carry-forward inserts copies.
type searchEntry struct {
	resp      SearchResponse
	local     cover.Community // result members, local (shard) id space
	localSeed int32
	c         float64
	rngUsed   int64
	opt       core.Options
}

// flight is one in-progress leader computation; followers wait on done.
type flight struct {
	done chan struct{}
	ent  *searchEntry
	err  error
}

type cacheItem struct {
	key searchKey
	ent *searchEntry
}

// searchCache is the generation-keyed LRU + singleflight table. The
// mutex guards the map/list structure only; the leader's search runs
// outside it, and counters are lock-free atomics so /debug/metrics
// never contends with the hot path.
type searchCache struct {
	capacity int
	rhoFloor float64

	mu      sync.Mutex
	lru     *list.List // front = most recently used
	entries map[searchKey]*list.Element
	flights map[searchKey]*flight

	hits         atomic.Uint64
	misses       atomic.Uint64
	coalesced    atomic.Uint64
	carried      atomic.Uint64
	carryDropped atomic.Uint64
	evicted      atomic.Uint64
	stalePruned  atomic.Uint64
}

func newSearchCache(capacity int, rhoFloor float64) *searchCache {
	return &searchCache{
		capacity: capacity,
		rhoFloor: rhoFloor,
		lru:      list.New(),
		entries:  make(map[searchKey]*list.Element),
		flights:  make(map[searchKey]*flight),
	}
}

// getOrCompute returns the entry for key — from the cache, from an
// in-flight leader's result, or by running compute as the new leader.
// fresh reports whether this caller ran the search itself (a miss); a
// false return with nil error is a hit or a coalesced wait. When a
// leader fails, its followers retry (possibly becoming leaders) so a
// request only fails on its own terms, not on another request's
// canceled context.
func (sc *searchCache) getOrCompute(ctx context.Context, key searchKey, compute func() (*searchEntry, error)) (ent *searchEntry, fresh bool, err error) {
	var fl *flight
	for fl == nil {
		sc.mu.Lock()
		if el, ok := sc.entries[key]; ok {
			sc.lru.MoveToFront(el)
			ent = el.Value.(*cacheItem).ent
			sc.mu.Unlock()
			sc.hits.Add(1)
			return ent, false, nil
		}
		if lead, ok := sc.flights[key]; ok {
			sc.mu.Unlock()
			sc.coalesced.Add(1)
			select {
			case <-lead.done:
			case <-ctx.Done():
				return nil, false, ctx.Err()
			}
			if lead.err == nil {
				return lead.ent, false, nil
			}
			// The leader failed (its client hung up, its deadline hit the
			// pool wait). That says nothing about this request — go around
			// and try again with our own context.
			continue
		}
		fl = &flight{done: make(chan struct{})}
		sc.flights[key] = fl
		sc.mu.Unlock()
	}
	sc.misses.Add(1)
	ent, err = compute()
	fl.ent, fl.err = ent, err

	sc.mu.Lock()
	delete(sc.flights, key)
	if err == nil {
		sc.insertLocked(key, ent)
	}
	sc.mu.Unlock()
	close(fl.done)
	return ent, true, err
}

// insertLocked adds (or refreshes) an entry and evicts from the LRU
// tail past capacity. Caller holds sc.mu.
func (sc *searchCache) insertLocked(key searchKey, ent *searchEntry) {
	if el, ok := sc.entries[key]; ok {
		el.Value.(*cacheItem).ent = ent
		sc.lru.MoveToFront(el)
		return
	}
	sc.entries[key] = sc.lru.PushFront(&cacheItem{key: key, ent: ent})
	for len(sc.entries) > sc.capacity {
		back := sc.lru.Back()
		sc.lru.Remove(back)
		delete(sc.entries, back.Value.(*cacheItem).key)
		sc.evicted.Add(1)
	}
}

// removeLocked drops the element if it is still present under its key.
func (sc *searchCache) removeLocked(el *list.Element) {
	it := el.Value.(*cacheItem)
	if cur, ok := sc.entries[it.key]; ok && cur == el {
		sc.lru.Remove(el)
		delete(sc.entries, it.key)
	}
}

// survives reports whether an entry's seed and result avoid the
// publish's dirty region — the reuse test: a community disjoint from
// every node the rebuild may answer differently is still locally
// optimal on the new graph.
func survives(e *searchEntry, dirty map[int32]struct{}) bool {
	if _, ok := dirty[e.localSeed]; ok {
		return false
	}
	for _, v := range e.local {
		if _, ok := dirty[v]; ok {
			return false
		}
	}
	return true
}

// carryForward runs at publish time (the rebuild goroutine, via
// OnSwap): prune the shard's superseded entries and — on fastpath and
// incremental publishes — re-key the survivors whose seed and result
// avoid snap.Dirty to the new generation, after the ρ spot check
// validates a sample of them against fresh recomputation. spotCheck
// recomputes one entry's search over the new snapshot; a floor
// violation (or an impossible recompute) drops the entire carry for
// this publish, never serving a result the check could not vouch for.
func (sc *searchCache) carryForward(shardID int, snap *refresh.Snapshot, spotCheck func(searchKey, *searchEntry) (*searchEntry, bool)) {
	carry := snap.Gen > 1 &&
		(snap.RebuildMode == refresh.ModeFastpath || snap.RebuildMode == refresh.ModeIncremental)
	var dirty map[int32]struct{}
	if carry {
		dirty = make(map[int32]struct{}, len(snap.Dirty))
		for _, v := range snap.Dirty {
			dirty[v] = struct{}{}
		}
	}

	sc.mu.Lock()
	var cands []*cacheItem
	var stale []*list.Element
	for el := sc.lru.Front(); el != nil; el = el.Next() {
		it := el.Value.(*cacheItem)
		if it.key.shard != shardID || it.key.gen >= snap.Gen {
			continue
		}
		stale = append(stale, el)
		if carry && it.key.gen == snap.Gen-1 && survives(it.ent, dirty) {
			cands = append(cands, it)
		}
	}
	sc.mu.Unlock()

	// The ρ spot check runs outside the lock (it is a real search). The
	// sample is the carry's most recently used entries — the ones most
	// likely to be served again. Checked entries are replaced with their
	// fresh recomputation: strictly better than carrying, since the work
	// is already done.
	checked := make(map[*cacheItem]*searchEntry, carrySpotChecks)
	for i := 0; i < len(cands) && i < carrySpotChecks; i++ {
		ne, ok := spotCheck(cands[i].key, cands[i].ent)
		if !ok || metrics.Rho(cands[i].ent.local, ne.local) < sc.rhoFloor {
			sc.carryDropped.Add(uint64(len(cands)))
			cands = nil
			break
		}
		checked[cands[i]] = ne
	}

	sc.mu.Lock()
	for _, el := range stale {
		sc.removeLocked(el)
		sc.stalePruned.Add(1)
	}
	for _, it := range cands {
		nk := it.key
		nk.gen = snap.Gen
		ne, ok := checked[it]
		if !ok {
			// Entries are immutable once visible to readers: carry a copy
			// with the generation restamped, sharing the member slices.
			cp := *it.ent
			cp.resp.Generation = snap.Gen
			ne = &cp
		}
		sc.insertLocked(nk, ne)
		sc.carried.Add(1)
	}
	sc.mu.Unlock()
}

// searchCacheStats is the /debug/metrics (and /healthz summary) shape.
type searchCacheStats struct {
	Entries        int     `json:"entries"`
	Capacity       int     `json:"capacity"`
	Hits           uint64  `json:"hits"`
	Misses         uint64  `json:"misses"`
	Coalesced      uint64  `json:"coalesced"`
	CarriedForward uint64  `json:"carried_forward"`
	CarryDropped   uint64  `json:"carry_dropped"`
	Evicted        uint64  `json:"evicted"`
	StalePruned    uint64  `json:"stale_pruned"`
	HitRate        float64 `json:"hit_rate"`
}

func (sc *searchCache) stats() searchCacheStats {
	sc.mu.Lock()
	entries := len(sc.entries)
	sc.mu.Unlock()
	st := searchCacheStats{
		Entries:        entries,
		Capacity:       sc.capacity,
		Hits:           sc.hits.Load(),
		Misses:         sc.misses.Load(),
		Coalesced:      sc.coalesced.Load(),
		CarriedForward: sc.carried.Load(),
		CarryDropped:   sc.carryDropped.Load(),
		Evicted:        sc.evicted.Load(),
		StalePruned:    sc.stalePruned.Load(),
	}
	if lookups := st.Hits + st.Misses + st.Coalesced; lookups > 0 {
		// Coalesced waits share a computed result, so they count as
		// served-without-a-search alongside plain hits.
		st.HitRate = float64(st.Hits+st.Coalesced) / float64(lookups)
	}
	return st
}

// cacheSpotCheck returns the carry-forward validator for one publish:
// recompute an entry's search fresh over the new snapshot with the
// entry's own parameters and rng stream, rendered exactly as the
// request path would render it. One search.State is built lazily and
// reused across the publish's checks (they run serially on the rebuild
// goroutine, never through the request pool).
func (s *Server) cacheSpotCheck(shardID int, snap *refresh.Snapshot) func(searchKey, *searchEntry) (*searchEntry, bool) {
	var st *search.State
	return func(key searchKey, e *searchEntry) (*searchEntry, bool) {
		g := snap.Graph
		if e.localSeed < 0 || int(e.localSeed) >= g.N() {
			return nil, false
		}
		if st == nil {
			st = search.NewState(g, snap.MaxDegree)
		}
		rng := rand.New(rand.NewSource(e.rngUsed))
		local, fitness := core.FindCommunityWith(g, st, e.localSeed, e.c, rng, e.opt)
		resp := SearchResponse{
			Seed:       key.seed,
			C:          e.c,
			Size:       len(local),
			Fitness:    fitness,
			Members:    local,
			Generation: snap.Gen,
		}
		if s.sharded() {
			v := shard.View{Shard: shardID, Snap: snap}
			resp.Members = v.Members(local)
			sh := shardID
			resp.Shard = &sh
		}
		return &searchEntry{
			resp:      resp,
			local:     local,
			localSeed: e.localSeed,
			c:         e.c,
			rngUsed:   e.rngUsed,
			opt:       e.opt,
		}, true
	}
}
