// Package resilience provides the failure-domain primitives the
// transport layer composes around remote backends: a three-state
// circuit breaker, a jittered-exponential retry policy bounded by a
// token-bucket retry budget, and the Stats carrier that surfaces both
// through /healthz and /debug/metrics.
//
// The package is deliberately dependency-free (standard library only)
// so both internal/shard and internal/transport can import it without
// cycles. Nothing here performs I/O: callers report outcomes
// (Success/Failure) and ask permission (Allow/Probe); the breaker is
// pure bookkeeping on the caller's goroutine.
package resilience

import (
	"sync"
	"sync/atomic"
	"time"
)

// State is a circuit breaker's position.
type State int32

const (
	// Closed: requests flow; consecutive failures are counted toward
	// the trip threshold.
	Closed State = iota
	// Open: requests fast-fail without touching the backend until the
	// cooldown elapses.
	Open
	// HalfOpen: one probe is in flight deciding the breaker's fate;
	// regular requests still fast-fail.
	HalfOpen
)

func (s State) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half_open"
	}
	return "unknown"
}

// BreakerConfig tunes a Breaker. Zero values take the defaults.
type BreakerConfig struct {
	// Threshold is the consecutive-failure count that trips a closed
	// breaker open (default 5).
	Threshold int
	// Cooldown is how long an open breaker fast-fails before admitting
	// a half-open probe (default 500ms).
	Cooldown time.Duration
	// Now is the clock, injectable in tests (default time.Now).
	Now func() time.Time
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.Threshold <= 0 {
		c.Threshold = 5
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 500 * time.Millisecond
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// Breaker is a per-backend three-state circuit breaker. Only
// network-level failures should be reported as Failure — a backend
// that answers at all (even with an application error) is alive, and
// tripping on application errors would turn one poison request into a
// full outage. Safe for concurrent use.
type Breaker struct {
	mu       sync.Mutex
	cfg      BreakerConfig
	state    State
	fails    int
	openedAt time.Time

	trips     atomic.Uint64
	fastFails atomic.Uint64
}

// NewBreaker returns a closed breaker.
func NewBreaker(cfg BreakerConfig) *Breaker {
	return &Breaker{cfg: cfg.withDefaults()}
}

// State reports the current position.
func (b *Breaker) State() State {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Allow reports whether a regular request may proceed. Closed admits;
// Open and HalfOpen fast-fail (counted in FastFails) — recovery rides
// designated probes (Probe), not regular traffic, so a half-open
// backend is not stampeded the instant its cooldown elapses.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	ok := b.state == Closed
	b.mu.Unlock()
	if !ok {
		b.fastFails.Add(1)
	}
	return ok
}

// Probe asks to run a recovery probe: true only when the breaker is
// Open and the cooldown has elapsed, transitioning it to HalfOpen.
// The caller must follow up with Success or Failure. Periodic pollers
// call this before their health check; a false return does not forbid
// the check itself (health probes are cheap and their outcome feeds
// Success/Failure regardless), it only marks whether this tick is the
// formal half-open transition.
func (b *Breaker) Probe() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == Open && b.cfg.Now().Sub(b.openedAt) >= b.cfg.Cooldown {
		b.state = HalfOpen
		return true
	}
	return false
}

// Success reports a request that reached the backend and got an
// answer. Any state closes: a live response is proof of life.
func (b *Breaker) Success() {
	b.mu.Lock()
	b.state = Closed
	b.fails = 0
	b.mu.Unlock()
}

// Failure reports a network-level failure. Closed counts toward the
// trip threshold; HalfOpen reopens immediately (the probe failed);
// Open is a no-op (stragglers from before the trip carry no news).
func (b *Breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		b.fails++
		if b.fails >= b.cfg.Threshold {
			b.trip()
		}
	case HalfOpen:
		b.trip()
	}
}

// trip must run under b.mu.
func (b *Breaker) trip() {
	b.state = Open
	b.fails = 0
	b.openedAt = b.cfg.Now()
	b.trips.Add(1)
}

// Trips is the number of Closed/HalfOpen → Open transitions.
func (b *Breaker) Trips() uint64 { return b.trips.Load() }

// FastFails is the number of requests Allow rejected without touching
// the backend.
func (b *Breaker) FastFails() uint64 { return b.fastFails.Load() }
