package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/cover"
	"repro/internal/graph"
)

// twoCliqueGraph builds the quickstart graph: two 6-cliques sharing two
// nodes (4 and 5) — the textbook overlapping-community picture.
func twoCliqueGraph(t testing.TB) *graph.Graph {
	t.Helper()
	const groupSize, shared = 6, 2
	n := 2*groupSize - shared
	b := graph.NewBuilder(n)
	for i := int32(0); i < groupSize; i++ {
		for j := i + 1; j < groupSize; j++ {
			b.AddEdge(i, j)
		}
	}
	for i := int32(groupSize - shared); i < int32(n); i++ {
		for j := i + 1; j < int32(n); j++ {
			b.AddEdge(i, j)
		}
	}
	return b.Build()
}

// fixedCover is the ground-truth cover of twoCliqueGraph.
func fixedCover() *cover.Cover {
	return cover.NewCover([]cover.Community{
		{0, 1, 2, 3, 4, 5},
		{4, 5, 6, 7, 8, 9},
	})
}

func newTestServer(t testing.TB, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := NewWithCover(twoCliqueGraph(t), fixedCover(), cfg)
	if err != nil {
		t.Fatalf("NewWithCover: %v", err)
	}
	t.Cleanup(s.Close)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func getJSON(t testing.TB, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(body, out); err != nil {
			t.Fatalf("GET %s: decoding %q: %v", url, body, err)
		}
	}
	return resp.StatusCode
}

func postJSON(t testing.TB, url string, in, out any) int {
	t.Helper()
	payload, err := json.Marshal(in)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(body, out); err != nil {
			t.Fatalf("POST %s: decoding %q: %v", url, body, err)
		}
	}
	return resp.StatusCode
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var h healthzResponse
	if code := getJSON(t, ts.URL+"/healthz", &h); code != http.StatusOK {
		t.Fatalf("healthz status = %d", code)
	}
	if h.Status != "ok" || h.Nodes != 10 || h.Edges != 29 || !h.CoverReady {
		t.Errorf("healthz = %+v", h)
	}
}

func TestNodeCommunities(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	tests := []struct {
		node      string
		wantCode  int
		wantComms []int32
	}{
		{"0", http.StatusOK, []int32{0}},
		{"4", http.StatusOK, []int32{0, 1}}, // overlap node
		{"5", http.StatusOK, []int32{0, 1}}, // overlap node
		{"9", http.StatusOK, []int32{1}},
		{"10", http.StatusNotFound, nil},
		{"-1", http.StatusNotFound, nil},
		{"zebra", http.StatusBadRequest, nil},
	}
	for _, tt := range tests {
		var got nodeCommunitiesResponse
		code := getJSON(t, ts.URL+"/v1/node/"+tt.node+"/communities", &got)
		if code != tt.wantCode {
			t.Errorf("node %s: status = %d, want %d", tt.node, code, tt.wantCode)
			continue
		}
		if tt.wantCode != http.StatusOK {
			continue
		}
		if got.Count != len(tt.wantComms) {
			t.Errorf("node %s: count = %d, want %d", tt.node, got.Count, len(tt.wantComms))
			continue
		}
		for i, ref := range got.Communities {
			if ref.ID != tt.wantComms[i] {
				t.Errorf("node %s: community[%d] = %d, want %d", tt.node, i, ref.ID, tt.wantComms[i])
			}
			if ref.Size != 6 {
				t.Errorf("node %s: community %d size = %d, want 6", tt.node, ref.ID, ref.Size)
			}
			if ref.Members != nil {
				t.Errorf("node %s: members included without ?members=1", tt.node)
			}
		}
	}
}

func TestNodeCommunitiesWithMembers(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var got nodeCommunitiesResponse
	if code := getJSON(t, ts.URL+"/v1/node/0/communities?members=1", &got); code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if len(got.Communities) != 1 || len(got.Communities[0].Members) != 6 {
		t.Fatalf("got %+v, want one community with 6 members", got)
	}
}

func TestCoverStats(t *testing.T) {
	_, ts := newTestServer(t, Config{OCA: core.Options{C: 0.5}})
	var st statsResponse
	if code := getJSON(t, ts.URL+"/v1/cover/stats", &st); code != http.StatusOK {
		t.Fatalf("stats status = %d", code)
	}
	if st.Nodes != 10 || st.Communities != 2 || st.CoveredNodes != 10 ||
		st.OverlapNodes != 2 || st.MaxMembership != 2 || st.C != 0.5 {
		t.Errorf("stats = %+v", st)
	}
	if st.Coverage != 1 {
		t.Errorf("coverage = %g, want 1", st.Coverage)
	}
}

func TestSearch(t *testing.T) {
	_, ts := newTestServer(t, Config{OCA: core.Options{C: 0.5}})
	var got SearchResponse
	req := SearchRequest{Seed: 0, RNGSeed: 7}
	if code := postJSON(t, ts.URL+"/v1/search", req, &got); code != http.StatusOK {
		t.Fatalf("search status = %d", code)
	}
	if got.Seed != 0 || got.Size == 0 || got.Size != len(got.Members) {
		t.Fatalf("search response = %+v", got)
	}
	// The seeded search from inside clique A must find clique members.
	found := map[int32]bool{}
	for _, v := range got.Members {
		found[v] = true
	}
	if !found[0] {
		t.Errorf("community %v does not contain its seed", got.Members)
	}
	// Determinism: same rng seed and parameters, same community.
	var again SearchResponse
	if code := postJSON(t, ts.URL+"/v1/search", req, &again); code != http.StatusOK {
		t.Fatalf("repeat search status = %d", code)
	}
	if fmt.Sprint(again.Members) != fmt.Sprint(got.Members) {
		t.Errorf("search not deterministic: %v vs %v", got.Members, again.Members)
	}
}

func TestSearchErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{OCA: core.Options{C: 0.5}})
	if code := postJSON(t, ts.URL+"/v1/search", SearchRequest{Seed: 99}, nil); code != http.StatusNotFound {
		t.Errorf("out-of-range seed: status = %d, want 404", code)
	}
	if code := postJSON(t, ts.URL+"/v1/search", SearchRequest{Seed: 0, C: 1.5}, nil); code != http.StatusBadRequest {
		t.Errorf("invalid c: status = %d, want 400", code)
	}
	// Negative max_steps means "unlimited" inside core; the server must
	// reject it rather than let one request hold a pool worker forever.
	if code := postJSON(t, ts.URL+"/v1/search", SearchRequest{Seed: 0, MaxSteps: -1}, nil); code != http.StatusBadRequest {
		t.Errorf("negative max_steps: status = %d, want 400", code)
	}
	if code := postJSON(t, ts.URL+"/v1/search", SearchRequest{Seed: 0, NeighborProb: -0.5}, nil); code != http.StatusBadRequest {
		t.Errorf("negative neighbor_prob: status = %d, want 400", code)
	}
	if code := postJSON(t, ts.URL+"/v1/search", SearchRequest{Seed: 0, NeighborProb: 50}, nil); code != http.StatusBadRequest {
		t.Errorf("neighbor_prob > 1: status = %d, want 400", code)
	}
	// A huge finite step budget is accepted but clamped to the server's
	// cap rather than trusted verbatim.
	if code := postJSON(t, ts.URL+"/v1/search", SearchRequest{Seed: 0, MaxSteps: 2_000_000_000, RNGSeed: 1}, nil); code != http.StatusOK {
		t.Errorf("huge max_steps: status = %d, want 200 (clamped)", code)
	}
}

// TestSearchStepCapWithUnlimitedConfig pins the invariant that even a
// server configured with unlimited batch steps (OCA.MaxSteps < 0, legal
// in core.Options) never runs a network-triggered search unbounded.
func TestSearchStepCapWithUnlimitedConfig(t *testing.T) {
	s, err := NewWithCover(twoCliqueGraph(t), fixedCover(), Config{
		OCA: core.Options{C: 0.5, MaxSteps: -1},
	})
	if err != nil {
		t.Fatalf("NewWithCover: %v", err)
	}
	if s.stepCap != 100000 {
		t.Fatalf("stepCap = %d, want core default 100000", s.stepCap)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	var got SearchResponse
	if code := postJSON(t, ts.URL+"/v1/search", SearchRequest{Seed: 0, RNGSeed: 1}, &got); code != http.StatusOK {
		t.Fatalf("search status = %d", code)
	}
	if got.Size == 0 {
		t.Errorf("search returned empty community: %+v", got)
	}
	resp, err := http.Post(ts.URL+"/v1/search", "application/json", bytes.NewReader([]byte(`{"bogus":`)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body: status = %d, want 400", resp.StatusCode)
	}
}

func TestSearchOversizedBody(t *testing.T) {
	s, err := NewWithCover(twoCliqueGraph(t), fixedCover(), Config{
		OCA:            core.Options{C: 0.5},
		MaxRequestBody: 64,
	})
	if err != nil {
		t.Fatalf("NewWithCover: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	big := append([]byte(`{"seed":0,"rng_seed":`), bytes.Repeat([]byte("1"), 200)...)
	resp, err := http.Post(ts.URL+"/v1/search", "application/json", bytes.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized body: status = %d, want 413", resp.StatusCode)
	}
}

func TestNewWithCoverRejectsMismatchedCover(t *testing.T) {
	g := twoCliqueGraph(t) // 10 nodes
	bad := cover.NewCover([]cover.Community{{0, 1, 99}})
	if _, err := NewWithCover(g, bad, Config{OCA: core.Options{C: 0.5}}); err == nil {
		t.Fatal("NewWithCover accepted a cover with node 99 on a 10-node graph")
	}
}

func TestLazyCoverBuild(t *testing.T) {
	g := twoCliqueGraph(t)
	s, err := New(g, Config{Lazy: true, OCA: core.Options{Seed: 42, C: 0.5, Workers: 2}})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// healthz must respond without triggering the build.
	var h healthzResponse
	if code := getJSON(t, ts.URL+"/healthz", &h); code != http.StatusOK {
		t.Fatalf("healthz status = %d", code)
	}
	if h.CoverReady {
		t.Fatal("lazy server reported cover_ready before first cover request")
	}

	// search works pre-build (needs only c, not the cover).
	if code := postJSON(t, ts.URL+"/v1/search", SearchRequest{Seed: 0, RNGSeed: 1}, nil); code != http.StatusOK {
		t.Fatalf("pre-build search status = %d", code)
	}
	if s.coverReady.Load() {
		t.Fatal("search must not force the OCA run")
	}

	// First stats request forces the build.
	var st statsResponse
	if code := getJSON(t, ts.URL+"/v1/cover/stats", &st); code != http.StatusOK {
		t.Fatalf("stats status = %d", code)
	}
	if st.Communities == 0 {
		t.Errorf("lazy OCA run found no communities: %+v", st)
	}
	if code := getJSON(t, ts.URL+"/healthz", &h); code != http.StatusOK || !h.CoverReady {
		t.Errorf("cover_ready not reported after build (code %d, %+v)", code, h)
	}
}

// TestConcurrentTraffic hammers every endpoint from many goroutines;
// run under -race this is the concurrency acceptance test.
func TestConcurrentTraffic(t *testing.T) {
	_, ts := newTestServer(t, Config{OCA: core.Options{C: 0.5}, SearchWorkers: 2})
	client := ts.Client()
	const workers = 8
	const reps = 25
	var wg sync.WaitGroup
	errs := make(chan error, workers*reps*2)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < reps; i++ {
				node := (w*reps + i) % 10
				resp, err := client.Get(fmt.Sprintf("%s/v1/node/%d/communities", ts.URL, node))
				if err != nil {
					errs <- err
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("GET node %d: status %d", node, resp.StatusCode)
				}

				payload, _ := json.Marshal(SearchRequest{Seed: int32(node), RNGSeed: int64(i + 1)})
				resp, err = client.Post(ts.URL+"/v1/search", "application/json", bytes.NewReader(payload))
				if err != nil {
					errs <- err
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("POST search seed %d: status %d", node, resp.StatusCode)
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestConcurrentLazyBuild races many first requests against a lazy
// cover build; exactly one OCA run must happen and all must succeed.
func TestConcurrentLazyBuild(t *testing.T) {
	g := twoCliqueGraph(t)
	s, err := New(g, Config{Lazy: true, OCA: core.Options{Seed: 7, C: 0.5, Workers: 2}})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// No t.Fatalf helpers here: FailNow must not run off the
			// test goroutine.
			resp, err := http.Get(fmt.Sprintf("%s/v1/node/%d/communities", ts.URL, w))
			if err != nil {
				errs <- err
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("worker %d: status %d", w, resp.StatusCode)
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestRequestTimeout(t *testing.T) {
	// One worker and a held state: the second search must time out
	// rather than wait forever.
	s, err := NewWithCover(twoCliqueGraph(t), fixedCover(), Config{
		OCA:            core.Options{C: 0.5},
		SearchWorkers:  1,
		RequestTimeout: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("NewWithCover: %v", err)
	}
	// Drain the pool slot (a nil token until first use) so the request
	// cannot acquire a state.
	st := <-s.pool
	defer func() { s.pool <- st }()

	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	payload, _ := json.Marshal(SearchRequest{Seed: 0})
	resp, err := http.Post(ts.URL+"/v1/search", "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("saturated pool: status = %d, want 503", resp.StatusCode)
	}
	// Whether the handler or the TimeoutHandler answered first, the
	// error must arrive as JSON.
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("timeout response Content-Type = %q, want application/json", ct)
	}
}
