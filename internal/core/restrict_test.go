package core

import (
	"testing"

	"repro/internal/cover"
)

// TestRestrictScopesSeeding: a run restricted to one clique of a
// two-clique graph must explore only that region — the other clique is
// never seeded, so no community forms there.
func TestRestrictScopesSeeding(t *testing.T) {
	g := twoCliquesBridge(8) // cliques 0..7 and 8..15
	res, err := Run(g, Options{Seed: 9, Restrict: []int32{8, 9, 10, 11, 12, 13, 14, 15}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cover.Len() == 0 {
		t.Fatal("restricted run found nothing in its own region")
	}
	for _, c := range res.Cover.Communities {
		inB := 0
		for _, v := range c {
			if v >= 8 {
				inB++
			}
		}
		// Every community must be essentially clique B; at most the
		// bridge endpoint leaks in.
		if inB < len(c)-1 {
			t.Fatalf("restricted run produced a community outside its region: %v", c)
		}
	}
	// The seed budget scales with the region, not the graph: the default
	// is 4·|restrict| (min 16), far below 4·n.
	if res.SeedsTried > 4*8+8 {
		t.Fatalf("tried %d seeds for an 8-node region", res.SeedsTried)
	}
}

// TestRestrictWithWarmHaltsOnCoveredRegion: when warm communities
// already cover the whole restricted region, the run should stop almost
// immediately (coverage halting measures the region, not the graph) and
// return the warm cover.
func TestRestrictWithWarmHaltsOnCoveredRegion(t *testing.T) {
	g := twoCliquesBridge(8)
	warm := []cover.Community{cover.NewCommunity([]int32{0, 1, 2, 3, 4, 5, 6, 7})}
	res, err := Run(g, Options{
		Seed:     4,
		Warm:     warm,
		Restrict: []int32{0, 1, 2, 3},
		// Disable merging so the output is exactly warm + fresh.
		DisableMerge: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.SeedsTried != 0 {
		t.Fatalf("tried %d seeds over a fully warm-covered region, want 0", res.SeedsTried)
	}
	if len(res.Fresh) != 0 {
		t.Fatalf("fresh = %v, want none", res.Fresh)
	}
	if res.Cover.Len() != 1 || !res.Cover.Communities[0].Equal(warm[0]) {
		t.Fatalf("cover = %v, want the warm community only", res.Cover.Communities)
	}
}

// TestRestrictValidation: region members outside the graph are
// rejected, and duplicates are tolerated.
func TestRestrictValidation(t *testing.T) {
	g := twoCliquesBridge(4)
	if _, err := Run(g, Options{Seed: 1, Restrict: []int32{0, int32(g.N())}}); err == nil {
		t.Fatal("expected error for out-of-range restrict node")
	}
	if _, err := Run(g, Options{Seed: 1, Restrict: []int32{0, 0, 1, 1, 2}}); err != nil {
		t.Fatalf("duplicate restrict nodes: %v", err)
	}
}

// TestFreshExcludesWarm: Result.Fresh must hold exactly the communities
// the run itself discovered, unaffected by the result cover's sorting.
func TestFreshExcludesWarm(t *testing.T) {
	g := twoCliquesBridge(8)
	warm := []cover.Community{cover.NewCommunity([]int32{0, 1, 2, 3, 4, 5, 6, 7})}
	res, err := Run(g, Options{Seed: 6, Warm: warm, DisableMerge: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Fresh) == 0 {
		t.Fatal("run discovered nothing fresh")
	}
	for _, c := range res.Fresh {
		if c.Equal(warm[0]) {
			continue // a re-discovery of the warm region is legitimate
		}
		hasB := false
		for _, v := range c {
			if v >= 8 {
				hasB = true
				break
			}
		}
		if !hasB {
			t.Fatalf("fresh community %v matches neither clique", c)
		}
	}
}
