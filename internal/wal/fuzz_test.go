package wal

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzWALRecord throws arbitrary bytes at the WAL stream parser and the
// payload decoders. The parser must never panic, never allocate beyond
// MaxRecordBytes per record, and must classify every input as exactly
// one of: clean read, torn tail (ErrTorn), or not-a-WAL.
func FuzzWALRecord(f *testing.F) {
	// Seed 1: a well-formed log with one batch and one publish marker.
	seed := func(build func(*bytes.Buffer)) []byte {
		var buf bytes.Buffer
		buf.Write(MagicLog[:])
		buf.Write([]byte{VersionLog, 0, 0, 0})
		buf.Write(make([]byte, 8)) // baseGen 0
		build(&buf)
		return buf.Bytes()
	}
	full := seed(func(buf *bytes.Buffer) {
		b := EdgeBatch{Seq: 1, Base: 2, NewLocals: []int32{9}, Add: [][2]int32{{0, 1}}, Remove: [][2]int32{{1, 2}}}
		buf.Write(appendFrame(nil, RecEdgeBatch, b.encode()))
		buf.Write(appendFrame(nil, RecPublish, Publish{Gen: 1, Seq: 1}.encode()))
	})
	f.Add(full)
	f.Add(full[:len(full)-3])           // torn tail
	f.Add(seed(func(*bytes.Buffer) {})) // header only
	f.Add([]byte("OCAG not a wal"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		hdr, recs, valid, err := ReadLog(bytes.NewReader(data))
		if err != nil && !errors.Is(err, ErrTorn) {
			// Hard error: not a WAL. No records may be surfaced.
			if len(recs) != 0 {
				t.Fatalf("hard error %v returned %d records", err, len(recs))
			}
			return
		}
		if hdr.Version != VersionLog {
			t.Fatalf("accepted header version %d", hdr.Version)
		}
		if valid < headerSize || valid > int64(len(data)) {
			t.Fatalf("valid offset %d outside [header, len] for %d-byte input", valid, len(data))
		}
		// Every surfaced record must re-read identically from the valid
		// prefix — the truncate-and-replay invariant recovery relies on.
		_, recs2, valid2, err2 := ReadLog(bytes.NewReader(data[:valid]))
		if err2 != nil || valid2 != valid || len(recs2) != len(recs) {
			t.Fatalf("valid prefix did not re-read cleanly: %v (%d vs %d recs)", err2, len(recs2), len(recs))
		}
		for _, rec := range recs {
			switch rec.Type {
			case RecEdgeBatch:
				if b, err := DecodeEdgeBatch(rec.Payload); err == nil {
					got, err := DecodeEdgeBatch(b.encode())
					if err != nil || got.Seq != b.Seq || len(got.Add) != len(b.Add) {
						t.Fatalf("edge batch did not round-trip: %v", err)
					}
				}
			case RecPublish:
				if p, err := DecodePublish(rec.Payload); err == nil {
					if got, _ := DecodePublish(p.encode()); got != p {
						t.Fatalf("publish did not round-trip")
					}
				}
			}
		}
	})
}
