package cpm

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

func TestMaximalCliquesKnown(t *testing.T) {
	// K4: exactly one maximal clique.
	cl, err := MaximalCliques(complete(4), 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(cl) != 1 || len(cl[0]) != 4 {
		t.Fatalf("K4 maximal cliques: %v", cl)
	}
	// C5 (5-cycle): five maximal cliques, all edges.
	b := graph.NewBuilder(5)
	for i := int32(0); i < 5; i++ {
		b.AddEdge(i, (i+1)%5)
	}
	cl, err = MaximalCliques(b.Build(), 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(cl) != 5 {
		t.Fatalf("C5 maximal cliques: %d, want 5", len(cl))
	}
	for _, c := range cl {
		if len(c) != 2 {
			t.Fatalf("C5 clique size %d, want 2", len(c))
		}
	}
}

// TestMaximalCliquesMatchBrute compares against brute-force subset
// enumeration on random graphs.
func TestMaximalCliquesMatchBrute(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(12)
		b := graph.NewBuilder(n)
		for i := 0; i < 3*n; i++ {
			b.AddEdge(int32(rng.Intn(n)), int32(rng.Intn(n)))
		}
		g := b.Build()
		got, err := MaximalCliques(g, 0, nil)
		if err != nil {
			return false
		}
		want := bruteMaximalCliques(g)
		if len(got) != len(want) {
			return false
		}
		key := func(c []int32) string {
			s := ""
			for _, v := range c {
				s += string(rune(v)) + ","
			}
			return s
		}
		seen := map[string]bool{}
		for _, c := range got {
			seen[key(c)] = true
		}
		for _, c := range want {
			if !seen[key(c)] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func bruteMaximalCliques(g *graph.Graph) [][]int32 {
	n := g.N()
	isClique := func(mask uint) bool {
		var nodes []int32
		for v := 0; v < n; v++ {
			if mask&(1<<uint(v)) != 0 {
				nodes = append(nodes, int32(v))
			}
		}
		for i := 0; i < len(nodes); i++ {
			for j := i + 1; j < len(nodes); j++ {
				if !g.HasEdge(nodes[i], nodes[j]) {
					return false
				}
			}
		}
		return true
	}
	var cliqueMasks []uint
	for mask := uint(1); mask < 1<<uint(n); mask++ {
		if isClique(mask) {
			cliqueMasks = append(cliqueMasks, mask)
		}
	}
	var out [][]int32
	for _, m := range cliqueMasks {
		maximal := true
		for _, m2 := range cliqueMasks {
			if m2 != m && m2&m == m {
				maximal = false
				break
			}
		}
		if maximal {
			var nodes []int32
			for v := 0; v < n; v++ {
				if m&(1<<uint(v)) != 0 {
					nodes = append(nodes, int32(v))
				}
			}
			out = append(out, nodes)
		}
	}
	return out
}

// TestCFinderMatchesPercolation: the CFinder maximal-clique method and
// direct k-clique percolation must produce identical covers (Palla et
// al.'s equivalence) for k = 3 and 4 on random graphs.
func TestCFinderMatchesPercolation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(20)
		b := graph.NewBuilder(n)
		for i := 0; i < 4*n; i++ {
			b.AddEdge(int32(rng.Intn(n)), int32(rng.Intn(n)))
		}
		g := b.Build()
		for _, k := range []int{3, 4} {
			viaCPM, err := Run(g, Options{K: k})
			if err != nil {
				return false
			}
			viaCF, err := RunCFinder(g, Options{K: k})
			if err != nil {
				return false
			}
			if viaCPM.Cover.Len() != viaCF.Cover.Len() {
				return false
			}
			for i := range viaCPM.Cover.Communities {
				if !viaCPM.Cover.Communities[i].Equal(viaCF.Cover.Communities[i]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestCFinderGuards(t *testing.T) {
	if _, err := RunCFinder(complete(4), Options{K: 2}); err == nil {
		t.Fatal("expected k error")
	}
	if _, err := MaximalCliques(complete(20), 0, nil); err != nil {
		t.Fatalf("K20 has a single maximal clique: %v", err)
	}
}

func TestSortedSetHelpers(t *testing.T) {
	a := []int32{1, 3, 5, 7}
	b := []int32{3, 4, 5}
	if got := intersectCount(a, b); got != 2 {
		t.Fatalf("intersectCount=%d", got)
	}
	inter := intersectSorted(a, b)
	if len(inter) != 2 || inter[0] != 3 || inter[1] != 5 {
		t.Fatalf("intersectSorted=%v", inter)
	}
	sub := subtractSorted(a, b)
	if len(sub) != 2 || sub[0] != 1 || sub[1] != 7 {
		t.Fatalf("subtractSorted=%v", sub)
	}
	rm := removeSorted(append([]int32{}, a...), 5)
	if len(rm) != 3 || rm[2] != 7 {
		t.Fatalf("removeSorted=%v", rm)
	}
	ins := insertSorted(append([]int32{}, a...), 4)
	if !sort.SliceIsSorted(ins, func(i, j int) bool { return ins[i] < ins[j] }) || len(ins) != 5 {
		t.Fatalf("insertSorted=%v", ins)
	}
}

func TestCancel(t *testing.T) {
	// A cancel that fires immediately aborts both phases.
	always := func() bool { return true }
	if _, err := MaximalCliques(complete(10), 0, always); err != ErrCanceled {
		t.Fatalf("err=%v, want ErrCanceled", err)
	}
	if _, err := RunCFinder(complete(10), Options{K: 3, Cancel: always}); err != ErrCanceled {
		t.Fatalf("err=%v, want ErrCanceled", err)
	}
	// A cancel that never fires leaves the result intact.
	never := func() bool { return false }
	res, err := RunCFinder(complete(10), Options{K: 3, Cancel: never})
	if err != nil || res.Cover.Len() != 1 {
		t.Fatalf("err=%v len=%d", err, res.Cover.Len())
	}
}
