package transport

import (
	"context"
	"math"
	"net/http"
	"strconv"
	"time"
)

// Deadline propagation (docs/PROTOCOL.md "Deadline propagation").
//
// A client whose context carries a deadline stamps the remaining budget
// on every RPC as Ocad-Deadline-Ms; the server re-imposes that budget
// on its own handler context so work the caller has already abandoned
// is shed instead of finished into a closed connection. The header is
// advisory and additive: servers without it behave as before, requests
// without it run under the server's own limits only.

// stampDeadline copies ctx's remaining budget onto req as the
// Ocad-Deadline-Ms header. A deadline already in the past stamps 1ms —
// the server sheds it immediately, which beats racing the transport.
func stampDeadline(req *http.Request, ctx context.Context) {
	dl, ok := ctx.Deadline()
	if !ok {
		return
	}
	ms := int64(math.Ceil(float64(time.Until(dl)) / float64(time.Millisecond)))
	if ms < 1 {
		ms = 1
	}
	req.Header.Set(HeaderDeadline, strconv.FormatInt(ms, 10))
}

// deadlineKey marks a request context whose deadline came from the
// Ocad-Deadline-Ms header (vs the server's own limits), so handlers can
// report deadline_exceeded rather than a generic interruption.
type deadlineKey struct{}

// fromDeadlineHeader reports whether ctx's deadline was imposed by the
// client's Ocad-Deadline-Ms header and that budget has run out.
func fromDeadlineHeader(ctx context.Context) bool {
	flagged, _ := ctx.Value(deadlineKey{}).(bool)
	return flagged && ctx.Err() != nil
}

// withDeadlineHeader parses the Ocad-Deadline-Ms header and bounds r's
// context by it. Returns the possibly-rewrapped request, a cancel the
// caller must run, and false (after answering 400) on a malformed
// header.
func withDeadlineHeader(w http.ResponseWriter, r *http.Request) (*http.Request, context.CancelFunc, bool) {
	raw := r.Header.Get(HeaderDeadline)
	if raw == "" {
		return r, func() {}, true
	}
	ms, err := strconv.ParseInt(raw, 10, 64)
	if err != nil || ms < 1 {
		writeCode(w, http.StatusBadRequest, CodeBadRequest, "invalid %s header %q", HeaderDeadline, raw)
		return r, func() {}, false
	}
	ctx := context.WithValue(r.Context(), deadlineKey{}, true)
	ctx, cancel := context.WithTimeout(ctx, time.Duration(ms)*time.Millisecond)
	return r.WithContext(ctx), cancel, true
}

// retryAfter stamps a Retry-After header of d rounded up to whole
// seconds (minimum 1 — the header speaks integer seconds). Every 503
// the protocol emits carries one, derived from the condition: queue
// depth for backlog, poll cadence for replica misroutes, a fixed floor
// for plain unavailability (docs/OPERATIONS.md "Failure modes").
func retryAfter(w http.ResponseWriter, d time.Duration) {
	secs := int64(math.Ceil(d.Seconds()))
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
}
