// Live shard rebalancing: the two-generation handoff that moves a node
// range between shards with zero downtime. The donor keeps serving the
// range at generation g for the whole transfer window; the receiver
// mirrors the donor's snapshot slice (owned nodes, their halo, and the
// halo's ghost-ghost edges) while the router double-applies in-window
// mutations to both; the flip atomically installs the epoch e+1 map and
// only then does the donor drop the range (its generation g+1). A
// failure anywhere before the flip aborts cleanly back to epoch e.
package shard

import (
	"context"
	"errors"
	"fmt"
)

// ErrRebalanceInFlight rejects a Rebalance while another migration's
// transfer window is open; only one may be in flight per router.
var ErrRebalanceInFlight = errors.New("shard: rebalance already in flight")

// ErrInvalidMove wraps Rebalance argument-validation failures (inverted
// or empty range, shard index out of bounds, self-move, nothing owned
// in the range) — the request was malformed and nothing was attempted,
// as opposed to a migration that started and aborted.
var ErrInvalidMove = errors.New("invalid rebalance request")

// FlipCommittedError reports a rebalance failure after the flip: the
// router routes at Epoch, the migration is NOT aborted and must not be
// treated as one — the remedy is retrying the idempotent post-flip
// step (the map install or flush named in Err) on the lagging shard,
// not re-running the migration.
type FlipCommittedError struct {
	// Epoch is the committed epoch the router now routes at.
	Epoch uint64
	// Err is the post-flip install/flush failure.
	Err error
}

func (e *FlipCommittedError) Error() string {
	return fmt.Sprintf("shard: rebalance: flip committed at epoch %d, but a post-flip step failed (retry the install on the lagging shard): %v", e.Epoch, e.Err)
}

// Unwrap exposes the underlying install/flush error.
func (e *FlipCommittedError) Unwrap() error { return e.Err }

// sliceChunk is the number of edges shipped per Ingest call during a
// slice transfer. Chunks acquire the router's mutation lock one at a
// time, so normal writes interleave with the transfer instead of
// stalling behind it.
const sliceChunk = 2048

// mapInstaller is the optional Backend extension the rebalancer uses to
// push partition maps to shards. The transport client implements it
// (POST /shard/v1/map); pending installs are transfer-window state the
// remote must not persist — a receiver crashing mid-migration rejoins
// at the old epoch.
type mapInstaller interface {
	InstallPartitionMap(ctx context.Context, pm *PartitionMap, pending bool) error
}

// partitionSetter is the in-process Worker's map surface; installs
// through it are always treated as authoritative (the in-process
// deployment has no crash-recovery distinction to preserve).
type partitionSetter interface {
	SetPartitionMap(pm *PartitionMap) error
}

// slicer is the optional Backend extension for slice-transfer traffic:
// Apply semantics on a dedicated path, so fault injection (and
// operators reading access logs) can distinguish migration traffic from
// normal writes. Backends without it fall back to Apply.
type slicer interface {
	Ingest(ctx context.Context, add, remove [][2]int32) error
}

// RebalanceStatus is the router's rebalancing state for observability
// endpoints.
type RebalanceStatus struct {
	// Epoch is the active partition map's epoch.
	Epoch uint64 `json:"epoch"`
	// Active reports an in-flight migration (transfer window open).
	Active bool `json:"active"`
	// Migrations counts completed rebalances (flips).
	Migrations uint64 `json:"migrations"`
	// Aborted counts rebalances rolled back to their old epoch.
	Aborted uint64 `json:"aborted"`
	// HaloSyncs counts completed RefreshHalos sweeps.
	HaloSyncs uint64 `json:"halo_syncs"`
}

// RebalanceStatus reports the router's rebalancing counters. It never
// blocks on an in-flight migration.
func (r *Router) RebalanceStatus() RebalanceStatus {
	r.mu.Lock()
	active := r.mig != nil
	r.mu.Unlock()
	return RebalanceStatus{
		Epoch:      r.pm.Load().Epoch,
		Active:     active,
		Migrations: r.migrations.Load(),
		Aborted:    r.aborted.Load(),
		HaloSyncs:  r.haloSyncs.Load(),
	}
}

// installMap pushes pm to one backend, honoring the pending/final
// distinction when the backend supports it.
func installMap(ctx context.Context, b Backend, pm *PartitionMap, pending bool) error {
	if mi, ok := b.(mapInstaller); ok {
		return mi.InstallPartitionMap(ctx, pm, pending)
	}
	if ps, ok := b.(partitionSetter); ok {
		return ps.SetPartitionMap(pm)
	}
	return fmt.Errorf("shard: backend does not support partition map installs")
}

// ingestEdges ships translated local-id edges to a backend over its
// slice-transfer path, falling back to the normal Apply path for
// backends without one.
func ingestEdges(ctx context.Context, b Backend, add, remove [][2]int32) error {
	if ig, ok := b.(slicer); ok {
		return ig.Ingest(ctx, add, remove)
	}
	return b.Apply(ctx, add, remove)
}

// Rebalance migrates ownership of every node in [lo, hi) currently
// owned by shard from to shard to, returning the new epoch. The
// sequence is the two-generation handoff:
//
//  1. open the transfer window — from here Enqueue double-applies
//     mutations touching the range to donor and receiver;
//  2. flush the donor, so its published snapshot contains every
//     pre-window mutation;
//  3. install the epoch e+1 map on the receiver as pending state (its
//     rebuilds stop ghost-filtering the incoming range; a receiver
//     crash rejoins at epoch e because pending installs never persist);
//  4. extract the slice — the moving nodes, their halo, and the halo's
//     ghost-ghost edges — from the donor's snapshot and ship it in
//     chunks, each chunk taking the router's mutation lock so it
//     serializes with writes and skips edges removed in-window;
//  5. flush the receiver, then atomically flip the router's map to
//     epoch e+1 and close the window;
//  6. broadcast the final map to every backend — the donor's forced
//     ownership rebuild drops the range (its generation g+1) — and
//     flush the affected shards.
//
// Any failure before the flip aborts: the receiver is reset to the
// epoch e map, the window closes, and the cluster state is exactly as
// before. A failure after the flip does NOT abort — the committed
// epoch is returned alongside a *FlipCommittedError naming the
// post-flip step to retry. Only one rebalance may be in flight at a
// time.
func (r *Router) Rebalance(ctx context.Context, lo, hi int32, from, to int) (uint64, error) {
	// Open the transfer window.
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return 0, fmt.Errorf("shard: rebalance: router closed")
	}
	if r.mig != nil {
		r.mu.Unlock()
		return 0, ErrRebalanceInFlight
	}
	cur := r.pm.Load()
	pending, err := cur.Move(lo, hi, from, to)
	if err != nil {
		r.mu.Unlock()
		return 0, fmt.Errorf("%w: %w", ErrInvalidMove, err)
	}
	mig := &migration{
		pending: pending,
		lo:      lo, hi: hi,
		from: from, to: to,
		removed: make(map[[2]int32]struct{}),
		added:   make(map[[2]int32]struct{}),
	}
	r.mig = mig
	r.mu.Unlock()

	epoch, err := r.runMigration(ctx, cur, mig)
	if err != nil {
		if mig.flipped {
			// The flip committed: the router routes at e+1 and the
			// migration counters already reflect a completed rebalance.
			// Aborting here would install the stale epoch-e map on the
			// receiver — ghost-filtering the range it now owns — so the
			// failure surfaces as a retry-the-install warning instead.
			return mig.pending.Epoch, &FlipCommittedError{Epoch: mig.pending.Epoch, Err: err}
		}
		r.abortMigration(cur, mig)
		return cur.Epoch, err
	}
	return epoch, nil
}

// runMigration executes steps 2–6 of the handoff. On error the caller
// aborts; state mutations before the flip are confined to the receiver
// (pending map, extra ghost edges) and fully undone by the abort.
func (r *Router) runMigration(ctx context.Context, cur *PartitionMap, mig *migration) (uint64, error) {
	donor, recv := r.backends[mig.from], r.backends[mig.to]

	// Step 2: the donor's published snapshot must include every
	// pre-window mutation, or the slice would miss edges no in-window
	// double-apply will replay.
	if _, err := donor.Flush(ctx); err != nil {
		return 0, fmt.Errorf("shard: rebalance: flushing donor %d: %w", mig.from, err)
	}

	// Step 3: pending map on the receiver, so the range it is about to
	// ingest is owned — not ghost-filtered away on its next rebuild.
	if err := installMap(ctx, recv, mig.pending, true); err != nil {
		return 0, fmt.Errorf("shard: rebalance: installing pending map on shard %d: %w", mig.to, err)
	}

	// Step 4: extract and ship the slice.
	slice, err := extractSlice(donor.View(), cur, mig.pending, mig.from, mig.to)
	if err != nil {
		return 0, err
	}
	for off := 0; off < len(slice); off += sliceChunk {
		if err := ctx.Err(); err != nil {
			return 0, fmt.Errorf("shard: rebalance: %w", err)
		}
		end := off + sliceChunk
		if end > len(slice) {
			end = len(slice)
		}
		if err := r.shipChunk(ctx, recv, mig, slice[off:end]); err != nil {
			return 0, fmt.Errorf("shard: rebalance: shipping slice to shard %d: %w", mig.to, err)
		}
	}

	// Step 5: receiver catches up, then its stale halo copies of the
	// moving range are reconciled against the donor's authoritative
	// slice, then the atomic flip.
	if _, err := recv.Flush(ctx); err != nil {
		return 0, fmt.Errorf("shard: rebalance: flushing receiver %d: %w", mig.to, err)
	}
	if err := r.reconcileStale(ctx, recv, cur, mig, slice); err != nil {
		return 0, err
	}
	if _, err := recv.Flush(ctx); err != nil {
		return 0, fmt.Errorf("shard: rebalance: flushing receiver %d: %w", mig.to, err)
	}
	r.mu.Lock()
	r.pm.Store(mig.pending)
	mig.flipped = true // from here a failure must NOT abort to epoch e
	r.mig = nil
	r.mu.Unlock()
	r.migrations.Add(1)

	// Step 6: every backend adopts the final map. The receiver's install
	// is structurally a no-op rebuild-wise but tells a remote shard to
	// persist the epoch; the donor's forces the rebuild that drops the
	// range. A broadcast failure does not abort — the flip is committed
	// and the router's map is the routing truth — it surfaces as a
	// FlipCommittedError so the operator retries the install.
	for s, b := range r.backends {
		if err := installMap(ctx, b, mig.pending, false); err != nil {
			return mig.pending.Epoch, fmt.Errorf("installing the map on shard %d: %w", s, err)
		}
	}
	for _, s := range []int{mig.from, mig.to} {
		if _, err := r.backends[s].Flush(ctx); err != nil {
			return mig.pending.Epoch, fmt.Errorf("flushing shard %d: %w", s, err)
		}
	}
	return mig.pending.Epoch, nil
}

// abortMigration rolls a failed transfer window back to epoch e: the
// receiver re-adopts the current map (its forced rebuild re-filters the
// half-ingested range back to ghost status) and the window closes.
func (r *Router) abortMigration(cur *PartitionMap, mig *migration) {
	// Best-effort: the receiver may be the component that failed. Its
	// pending state is not persisted, so even an unreachable receiver
	// converges on restart. A fresh context, not the migration's — the
	// rollback must still be attempted when the caller's ctx is what
	// cancelled the transfer (remote installs bound themselves).
	_ = installMap(context.Background(), r.backends[mig.to], cur, true)
	r.mu.Lock()
	if r.mig == mig {
		r.mig = nil
	}
	r.mu.Unlock()
	r.aborted.Add(1)
}

// shipChunk translates one slice chunk into the receiver's local id
// space and ships it, under the router's mutation lock so it serializes
// with Enqueue — and sees every in-window removal recorded so far.
func (r *Router) shipChunk(ctx context.Context, recv Backend, mig *migration, chunk [][2]int32) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return fmt.Errorf("router closed")
	}
	add := make([][2]int32, 0, len(chunk))
	for _, e := range chunk {
		if _, gone := mig.removed[normEdge(e)]; gone {
			continue // removed mid-window; shipping it would resurrect it
		}
		lu, lv := recv.EnsureLocal(e[0]), recv.EnsureLocal(e[1])
		add = append(add, [2]int32{lu, lv})
	}
	if len(add) == 0 {
		return nil
	}
	return ingestEdges(ctx, recv, add, nil)
}

// reconcileStale drops the receiver's stale halo copies of moving-range
// edges: an edge it materialized as ghost-ghost that the authoritative
// donor snapshot no longer has (removed before the window opened,
// unseen by the receiver because pure-ghost shards skip normal
// fan-out). Without this, migrating a range onto a shard with a drifted
// halo would resurrect removed edges as owned truth. Runs under the
// router's mutation lock; edges touched in-window are exempt (their
// double-applies are already in the receiver's queue, in order).
func (r *Router) reconcileStale(ctx context.Context, recv Backend, cur *PartitionMap, mig *migration, slice [][2]int32) error {
	authoritative := make(map[[2]int32]struct{}, len(slice))
	for _, e := range slice {
		authoritative[normEdge(e)] = struct{}{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return fmt.Errorf("shard: rebalance: router closed")
	}
	v := recv.View()
	m := v.Meta()
	if v.Snap == nil || m == nil {
		return nil // nothing materialized, nothing stale
	}
	moving := func(gv int32) bool {
		return cur.ShardOf(gv) == mig.from && mig.pending.ShardOf(gv) == mig.to
	}
	var stale [][2]int32
	v.Snap.Graph.Edges(func(lu, lv int32) bool {
		gu, gv := m.Locals[lu], m.Locals[lv]
		if !moving(gu) && !moving(gv) {
			return true
		}
		e := normEdge([2]int32{gu, gv})
		if _, ok := authoritative[e]; ok {
			return true
		}
		if _, ok := mig.added[e]; ok {
			return true
		}
		stale = append(stale, [2]int32{lu, lv})
		return true
	})
	if len(stale) == 0 {
		return nil
	}
	if err := ingestEdges(ctx, recv, nil, stale); err != nil {
		return fmt.Errorf("shard: rebalance: reconciling %d stale edges on shard %d: %w", len(stale), mig.to, err)
	}
	return nil
}

// extractSlice computes the global-id edge set the receiver needs from
// the donor's published view: with S the set of nodes moving from donor
// to receiver, every donor edge with both endpoints in S ∪ N(S). That
// covers the new owned-owned and owned-ghost edges, and the halo's
// ghost-ghost edges (present in the donor's graph because each shard
// materializes its halo's interconnections) — so the receiver's OCA
// sees the same neighborhood structure the donor's did.
func extractSlice(v View, cur, pending *PartitionMap, from, to int) ([][2]int32, error) {
	m := v.Meta()
	if v.Snap == nil || m == nil {
		return nil, fmt.Errorf("shard: rebalance: donor %d has no published snapshot", from)
	}
	if v.Err != nil {
		return nil, fmt.Errorf("shard: rebalance: donor %d degraded: %w", from, v.Err)
	}
	g, locals := v.Snap.Graph, m.Locals
	n := g.N()
	moving := make([]bool, n) // S
	keep := make([]bool, n)   // S ∪ N(S)
	for l := 0; l < n; l++ {
		gv := locals[l]
		if cur.ShardOf(gv) == from && pending.ShardOf(gv) == to {
			moving[l] = true
			keep[l] = true
		}
	}
	g.Edges(func(lu, lv int32) bool {
		if moving[lu] || moving[lv] {
			keep[lu], keep[lv] = true, true
		}
		return true
	})
	var out [][2]int32
	g.Edges(func(lu, lv int32) bool {
		if !keep[lu] || !keep[lv] {
			return true
		}
		if !moving[lu] && !moving[lv] {
			// A ghost-ghost edge of the halo: the donor is not
			// authoritative for it — its own halo copy may be stale
			// (normal fan-out skips pure-ghost holders). Ship it only
			// when the receiver owns neither endpoint, where it is pure
			// halo padding; if the receiver owns an endpoint, its copy
			// is the truth and the donor's could resurrect a removed
			// edge as owned state.
			gu, gv := locals[lu], locals[lv]
			if cur.ShardOf(gu) == to || cur.ShardOf(gv) == to {
				return true
			}
		}
		out = append(out, [2]int32{locals[lu], locals[lv]})
		return true
	})
	return out, nil
}

// RefreshHalos re-synchronizes every shard's ghost-ghost edges from the
// shards that own them, riding the slice-transfer path. Normal mutation
// fan-out skips shards that merely ghost both endpoints of an edge (an
// accepted approximation — ghost neighborhoods steer OCA quality, never
// ownership), so halos drift under churn; a periodic sweep bounds the
// drift. Only edges between nodes a shard has already materialized are
// re-shipped — the sweep never grows any shard's node set.
func (r *Router) RefreshHalos(ctx context.Context) error {
	pm := r.pm.Load()
	type edge = [2]int32
	perShard := make([][][2]int32, len(r.backends))

	for src, b := range r.backends {
		v := b.View()
		m := v.Meta()
		if v.Snap == nil || m == nil || v.Err != nil {
			continue // degraded source: sync what we can from the others
		}
		g, locals := v.Snap.Graph, m.Locals
		var owned []edge // edges this shard is authoritative for
		g.Edges(func(lu, lv int32) bool {
			gu, gv := locals[lu], locals[lv]
			if pm.ShardOf(gu) == src || pm.ShardOf(gv) == src {
				owned = append(owned, edge{gu, gv})
			}
			return true
		})
		r.mu.Lock()
		if r.closed {
			r.mu.Unlock()
			return fmt.Errorf("shard: halo refresh: router closed")
		}
		for dst, db := range r.backends {
			if dst == src {
				continue
			}
			for _, e := range owned {
				su, sv := pm.ShardOf(e[0]), pm.ShardOf(e[1])
				if su == dst || sv == dst {
					continue // dst owns an endpoint: normal fan-out keeps it fresh
				}
				lu, ok1 := db.Lookup(e[0])
				lv, ok2 := db.Lookup(e[1])
				if ok1 && ok2 {
					perShard[dst] = append(perShard[dst], edge{lu, lv})
				}
			}
		}
		r.mu.Unlock()
	}

	for dst, add := range perShard {
		if len(add) == 0 {
			continue
		}
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("shard: halo refresh: %w", err)
		}
		if err := ingestEdges(ctx, r.backends[dst], add, nil); err != nil {
			return fmt.Errorf("shard: halo refresh: shard %d: %w", dst, err)
		}
	}
	r.haloSyncs.Add(1)
	return nil
}
