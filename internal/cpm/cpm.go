// Package cpm implements the CFinder baseline (Palla et al. 2005):
// k-clique percolation. Two k-cliques are adjacent when they share k−1
// nodes; a community is the union of the nodes of a connected component
// of that clique adjacency. The paper runs CFinder with k = 3 (the value
// that "yielded the best results"), for which a fast triangle/edge
// percolation path exists; general k ≥ 3 is supported through explicit
// clique enumeration.
package cpm

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"repro/internal/cover"
	"repro/internal/ds"
	"repro/internal/graph"
)

// Options configure a Run.
type Options struct {
	// K is the clique size. Default 3 (the paper's choice).
	K int
	// MaxCliques aborts the general-k enumeration when the graph holds
	// more cliques than this, as CFinder's clique phase is exponential in
	// the worst case ("prohibitive for large graphs", as the paper puts
	// it). Default 5,000,000. The k=3 path streams triangles and ignores
	// this limit.
	MaxCliques int
	// Cancel, when non-nil, is polled periodically by the expensive
	// phases (clique enumeration and the CFinder overlap matrix); when
	// it returns true the run aborts with ErrCanceled. The timing
	// harness uses it to enforce its per-run budget, mirroring the
	// paper's "prohibitively slow ... so we discard it".
	Cancel func() bool
}

// ErrCanceled is returned when Options.Cancel fired mid-run.
var ErrCanceled = errors.New("cpm: run canceled")

func (o Options) withDefaults() Options {
	if o.K == 0 {
		o.K = 3
	}
	if o.MaxCliques <= 0 {
		o.MaxCliques = 5_000_000
	}
	return o
}

// Result is the outcome of a Run.
type Result struct {
	Cover *cover.Cover
	// Cliques is the number of k-cliques found.
	Cliques int64
}

// Run executes k-clique percolation on g.
func Run(g *graph.Graph, opt Options) (*Result, error) {
	opt = opt.withDefaults()
	if opt.K < 3 {
		return nil, fmt.Errorf("cpm: k=%d, need k >= 3", opt.K)
	}
	if opt.K == 3 {
		return runTriangles(g), nil
	}
	return runGeneral(g, opt)
}

// runTriangles is the k=3 fast path: 3-cliques are triangles and two
// triangles are adjacent iff they share an edge, so percolation is a DSU
// over edge ids with one union pair per triangle.
func runTriangles(g *graph.Graph) *Result {
	idx := newEdgeIndex(g)
	dsu := ds.NewDSU(int(idx.m))
	inTriangle := make([]bool, idx.m)
	var cliques int64
	graph.ForEachTriangle(g, func(a, b, c int32) {
		cliques++
		e1 := idx.id(a, b)
		e2 := idx.id(b, c)
		e3 := idx.id(a, c)
		inTriangle[e1] = true
		inTriangle[e2] = true
		inTriangle[e3] = true
		dsu.Union(int(e1), int(e2))
		dsu.Union(int(e1), int(e3))
	})

	// Gather community node sets per percolation component.
	groups := map[int]map[int32]struct{}{}
	eid := int32(0)
	g.Edges(func(u, v int32) bool {
		if inTriangle[eid] {
			root := dsu.Find(int(eid))
			set, ok := groups[root]
			if !ok {
				set = make(map[int32]struct{})
				groups[root] = set
			}
			set[u] = struct{}{}
			set[v] = struct{}{}
		}
		eid++
		return true
	})
	return &Result{Cover: coverFromSets(groups), Cliques: cliques}
}

// edgeIndex maps an undirected edge (u<v) to a dense id: edges are
// numbered in the order Edges visits them. id(u,v) recovers the id with
// a binary search over u's adjacency.
type edgeIndex struct {
	g    *graph.Graph
	base []int64 // base[u] = number of edges (x,y), x<y, with x<u
	m    int64
}

func newEdgeIndex(g *graph.Graph) *edgeIndex {
	n := g.N()
	base := make([]int64, n+1)
	for u := int32(0); u < int32(n); u++ {
		nb := g.Neighbors(u)
		// Count neighbors greater than u.
		i := sort.Search(len(nb), func(i int) bool { return nb[i] > u })
		base[u+1] = base[u] + int64(len(nb)-i)
	}
	return &edgeIndex{g: g, base: base, m: base[n]}
}

// id returns the dense id of edge {a, b}; the edge must exist.
func (e *edgeIndex) id(a, b int32) int64 {
	if a > b {
		a, b = b, a
	}
	nb := e.g.Neighbors(a)
	lo := sort.Search(len(nb), func(i int) bool { return nb[i] > a })
	j := sort.Search(len(nb), func(i int) bool { return nb[i] >= b })
	return e.base[a] + int64(j-lo)
}

// runGeneral enumerates all k-cliques and percolates components through
// shared (k−1)-subsets.
func runGeneral(g *graph.Graph, opt Options) (*Result, error) {
	cliques, err := enumerateCliques(g, opt.K, opt.MaxCliques)
	if err != nil {
		return nil, err
	}
	nc := len(cliques) / opt.K
	dsu := ds.NewDSU(nc)
	// Bucket cliques by each (k−1)-subset; union within buckets.
	buckets := make(map[string]int, nc*opt.K)
	key := make([]byte, 4*(opt.K-1))
	sub := make([]int32, opt.K-1)
	for ci := 0; ci < nc; ci++ {
		cl := cliques[ci*opt.K : (ci+1)*opt.K]
		for drop := 0; drop < opt.K; drop++ {
			sub = sub[:0]
			for i, v := range cl {
				if i != drop {
					sub = append(sub, v)
				}
			}
			for i, v := range sub {
				binary.LittleEndian.PutUint32(key[4*i:], uint32(v))
			}
			if first, ok := buckets[string(key)]; ok {
				dsu.Union(first, ci)
			} else {
				buckets[string(key)] = ci
			}
		}
	}
	groups := map[int]map[int32]struct{}{}
	for ci := 0; ci < nc; ci++ {
		root := dsu.Find(ci)
		set, ok := groups[root]
		if !ok {
			set = make(map[int32]struct{})
			groups[root] = set
		}
		for _, v := range cliques[ci*opt.K : (ci+1)*opt.K] {
			set[v] = struct{}{}
		}
	}
	return &Result{Cover: coverFromSets(groups), Cliques: int64(nc)}, nil
}

// enumerateCliques lists all k-cliques of g as a flat slice of node ids
// (k consecutive ids per clique, ascending within each clique). It uses
// the ordered expansion: extend partial cliques only with higher-id
// common neighbors.
func enumerateCliques(g *graph.Graph, k, maxCliques int) ([]int32, error) {
	var out []int32
	stack := make([]int32, 0, k)
	// cand holds, per recursion depth, the sorted candidate extension set.
	var expand func(cands []int32) error
	expand = func(cands []int32) error {
		if len(stack) == k {
			if len(out)/k >= maxCliques {
				return fmt.Errorf("cpm: clique enumeration exceeded MaxCliques=%d", maxCliques)
			}
			out = append(out, stack...)
			return nil
		}
		need := k - len(stack)
		for i, v := range cands {
			if len(cands)-i < need {
				break // not enough candidates left
			}
			// New candidates: cands after v that are neighbors of v.
			var next []int32
			for _, w := range cands[i+1:] {
				if g.HasEdge(v, w) {
					next = append(next, w)
				}
			}
			stack = append(stack, v)
			err := expand(next)
			stack = stack[:len(stack)-1]
			if err != nil {
				return err
			}
		}
		return nil
	}
	n := g.N()
	for v := int32(0); v < int32(n); v++ {
		var cands []int32
		for _, w := range g.Neighbors(v) {
			if w > v {
				cands = append(cands, w)
			}
		}
		stack = append(stack, v)
		err := expand(cands)
		stack = stack[:0]
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

func coverFromSets(groups map[int]map[int32]struct{}) *cover.Cover {
	cs := make([]cover.Community, 0, len(groups))
	for _, set := range groups {
		members := make([]int32, 0, len(set))
		for v := range set {
			members = append(members, v)
		}
		cs = append(cs, cover.NewCommunity(members))
	}
	cv := cover.NewCover(cs)
	// Canonical order: by decreasing size, then lexicographically, so
	// results are deterministic despite map iteration.
	sort.SliceStable(cv.Communities, func(i, j int) bool {
		a, b := cv.Communities[i], cv.Communities[j]
		if len(a) != len(b) {
			return len(a) > len(b)
		}
		for x := range a {
			if a[x] != b[x] {
				return a[x] < b[x]
			}
		}
		return false
	})
	return cv
}
