package persist

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/shard"
	"repro/internal/wal"
)

// TestShardCrashRestartRoundTrip drives the full shard-server
// durability cycle: a live worker logging through the store, a
// simulated kill (no Seal), and a restart that replays the WAL tail —
// including translation-table growth — back to the pre-kill state.
func TestShardCrashRestartRoundTrip(t *testing.T) {
	dir := t.TempDir()
	g := twoCliques()
	const shardID, k, maxNodes = 1, 2, 32
	pc, err := shard.SplitOne(g, k, shardID)
	if err != nil {
		t.Fatal(err)
	}

	s := openStore(t, dir, Options{Shard: shardID, Shards: k, MaxNodes: maxNodes})
	cfg := shard.Config{
		OCA:      core.Options{Seed: 1, C: 0.5},
		Debounce: -1,
		LogBatch: func(b shard.Batch, seq uint64) error {
			return s.LogEdgeBatch(wal.EdgeBatch{Seq: seq, Base: b.Base, NewLocals: b.NewLocals, Add: b.Add, Remove: b.Remove})
		},
	}
	w, err := shard.NewWorker(pc, k, cfg, maxNodes)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	// Seal the initial generation, then apply a batch that grows the
	// table (a new global node 20 materializes locally).
	snap0 := w.Snapshot()
	if err := s.Seal(snap0, w.Table()[:snap0.Graph.N()]); err != nil {
		t.Fatal(err)
	}
	base := len(w.Table())
	newLocal := int32(base) // local id the growth lands on
	batch := shard.Batch{
		Base:      base,
		NewLocals: []int32{20},
		Add:       [][2]int32{{0, newLocal}},
	}
	if _, _, err := w.ApplyBatch(batch); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	pre := w.Snapshot()
	if err := s.OnPublish(pre, w.Table()[:pre.Graph.N()]); err != nil {
		t.Fatal(err)
	}
	preTable := w.Table()
	s.Close() // kill -9: no Seal

	// Restart.
	s2 := openStore(t, dir, Options{Shard: shardID, Shards: k, MaxNodes: maxNodes})
	st, err := s2.Load()
	if err != nil {
		t.Fatal(err)
	}
	if st.Segment == nil || st.Segment.Info.Gen != snap0.Gen {
		t.Fatalf("recovered segment = %+v, want gen %d", st.Segment, snap0.Gen)
	}
	if len(st.Tail) != 1 || !reflect.DeepEqual(st.Tail[0].NewLocals, []int32{20}) || st.Tail[0].Base != base {
		t.Fatalf("tail = %+v, want the growth batch (base %d, new [20])", st.Tail, base)
	}
	got, table, err := ReplayShard(st, shardID, k, cfg, maxNodes)
	if err != nil {
		t.Fatal(err)
	}
	if got.Gen != pre.Gen || got.Seq != pre.Seq {
		t.Errorf("replayed gen/seq = %d/%d, want %d/%d", got.Gen, got.Seq, pre.Gen, pre.Seq)
	}
	if !reflect.DeepEqual(table, preTable) {
		t.Errorf("replayed table = %v, want %v", table, preTable)
	}
	if !got.Graph.HasEdge(0, newLocal) {
		t.Error("replayed shard graph lost the new edge")
	}
	if !reflect.DeepEqual(got.Cover.Communities, pre.Cover.Communities) {
		t.Errorf("replayed cover differs: %v vs %v", got.Cover.Communities, pre.Cover.Communities)
	}

	// The serving worker rebuilt from the replayed state answers like
	// the pre-kill one.
	w2 := shard.NewWorkerFromSnapshot(got, table, shardID, k, cfg, maxNodes)
	defer w2.Close()
	if l, ok := w2.Lookup(20); !ok || l != newLocal {
		t.Errorf("restored worker Lookup(20) = %d/%v, want %d/true", l, ok, newLocal)
	}
	if w2.Snapshot().Gen != pre.Gen {
		t.Errorf("restored worker generation = %d, want %d", w2.Snapshot().Gen, pre.Gen)
	}
}

// TestReplayShardIdentityMismatch refuses to replay another shard's
// files.
func TestReplayShardIdentityMismatch(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir, Options{Shard: 0, Shards: 2})
	g := twoCliques()
	pc, err := shard.SplitOne(g, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	w, err := shard.NewWorker(pc, 2, shard.Config{OCA: core.Options{Seed: 1, C: 0.5}}, 32)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	snap := w.Snapshot()
	if err := s.Seal(snap, w.Table()[:snap.Graph.N()]); err != nil {
		t.Fatal(err)
	}
	st := &State{Segment: mustLoad(t, s, snap.Gen)}
	if _, _, err := ReplayShard(st, 1, 2, shard.Config{}, 32); err == nil {
		t.Fatal("replayed shard 0's segment as shard 1")
	}
}

func mustLoad(t *testing.T, s *Store, gen uint64) *Segment {
	t.Helper()
	seg, err := s.OpenGeneration(gen)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { seg.Close() })
	return seg
}
