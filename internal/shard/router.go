package shard

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/refresh"
	"repro/internal/resilience"
)

// Config tunes a Router. The zero value runs each shard's OCA with the
// paper's defaults (per-shard c derived from each shard graph's
// spectrum) and refresh.Config's debounce/backlog defaults.
type Config struct {
	// OCA configures every shard's cover runs. When OCA.C is 0 each
	// shard derives its own c = -1/λmin from its halo graph's spectrum —
	// the "active c" quoted per shard in /v1/cover/stats.
	OCA core.Options
	// DisableWarmStart forces cold per-shard OCA re-runs on refresh.
	DisableWarmStart bool
	// Debounce is each shard worker's mutation-coalescing window.
	Debounce time.Duration
	// MaxPending caps each shard worker's mutation backlog.
	MaxPending int
	// MaxNodes caps global node-set growth via mutations; 0 fixes the
	// node set at the initial graph's size. Shard workers always accept
	// local growth up to this bound, because even a fixed global node
	// set grows shards locally when new ghosts materialize.
	MaxNodes int
	// RederiveCAfter is each shard worker's c-drift threshold (see
	// refresh.Config.RederiveCAfter); shards re-derive independently, so
	// a churn-heavy shard refreshes its c while quiet shards keep
	// theirs.
	RederiveCAfter float64
	// IncrementalThreshold enables each shard worker's dirty-region
	// rebuild engine (see refresh.Config.IncrementalThreshold). The
	// fraction is judged against each shard's own cover, so a batch
	// concentrated on one shard rebuilds that shard incrementally while
	// untouched shards don't rebuild at all.
	IncrementalThreshold float64
	// OnSwap, when set, is called from a shard's worker goroutine after
	// that shard publishes a new generation.
	OnSwap func(shard int, snap *refresh.Snapshot)
	// PartitionMap, when set, is the versioned ownership map workers and
	// router evaluate ownership under — the persisted map a recovery
	// passes back in. Nil means the epoch-0 pure modulo-K map. Its K
	// must match the shard count.
	PartitionMap *PartitionMap
	// LogBatch, when set, is called when ApplyBatch accepts a mutation
	// batch — after validation, before it is queued — with the batch's
	// translation-table growth attached and the worker's cumulative op
	// count including it. An error rejects the batch with no effect
	// (accepted means logged: the write-ahead-log contract). Only the
	// ApplyBatch path invokes it; the in-process Apply path grows the
	// table out of band through EnsureLocal, which a log replay could
	// not reconstruct, so persistence is limited to shard-server
	// deployments (cmd/ocad enforces this).
	LogBatch func(b Batch, seq uint64) error

	// workerOCA, when set, overrides the OCA options handed to one
	// shard's refresh worker (not its initial build). Test-only
	// failure-injection hook; unexported on purpose.
	workerOCA func(shard int, opt core.Options) core.Options
}

// Router owns K partitioned shards — each a Backend serving its slice
// of the graph, in this process (*Worker) or in another one (the
// transport package's remote client) — and fans queries and mutations
// out to the owning shards. All methods are safe for concurrent use;
// reads are lock-free per shard (one atomic snapshot load locally, one
// mirror load remotely), mutations serialize on the router so the
// global→local translation tables grow consistently.
type Router struct {
	k          int
	maxPending int
	maxN       int // global node-set ceiling
	backends   []Backend

	// pm is the active partition map: routing reads it lock-free, and
	// Rebalance swaps it atomically at the flip (epoch e → e+1).
	pm atomic.Pointer[PartitionMap]

	mu     sync.Mutex // serializes Enqueue; guards curN, closed and mig
	curN   int        // global node ids in [0, curN) are valid (incl. pending growth)
	closed bool
	// mig is the in-flight migration, nil outside a rebalance. While
	// set, Enqueue double-applies mutations touching the migrating
	// range to donor and receiver (both maps' owners), so the receiver
	// observes every mutation the slice transfer might have missed.
	mig *migration

	migrations atomic.Uint64 // completed rebalances (flips)
	aborted    atomic.Uint64 // rebalances rolled back to their old epoch
	haloSyncs  atomic.Uint64 // completed halo refreshes
}

// migration is the transfer-window state of one in-flight rebalance.
type migration struct {
	pending *PartitionMap // the epoch e+1 map the flip will install
	lo, hi  int32
	from    int
	to      int
	// removed records edge removals accepted during the transfer
	// window (normalized u<v, global ids): slice chunks extracted from
	// the donor's pre-window snapshot must skip them, or a re-shipped
	// chunk would resurrect an edge the receiver already removed.
	removed map[[2]int32]struct{}
	// added records edge additions accepted during the window (same
	// keying): the receiver's stale-halo reconcile must not drop an
	// edge that is absent from the donor's pre-window snapshot only
	// because it was added after it.
	added map[[2]int32]struct{}
	// flipped is set (under the router's mutex) the moment the epoch
	// e+1 map is stored as routing truth: from then on a failure must
	// surface as a FlipCommittedError, never an abort back to epoch e.
	flipped bool
}

// NewRouter splits g into k shards, runs the initial per-shard OCA
// covers (in parallel), and starts one in-process Worker per shard. A
// shard with no edges gets an empty cover and no c until mutations give
// it edges.
func NewRouter(g *graph.Graph, k int, cfg Config) (*Router, error) {
	if cfg.PartitionMap != nil && (cfg.PartitionMap.Epoch != 0 || len(cfg.PartitionMap.Ranges) != 0) {
		// Split materializes each piece by the base modulo-K assignment;
		// a rebalanced map's ownership would not match the pieces. Fresh
		// builds start at epoch 0 — recovered maps come back through
		// NewWorkerFromSnapshot and AdoptPartitionMap.
		return nil, fmt.Errorf("shard: initial builds start at the epoch-0 map (got epoch %d with %d overrides)",
			cfg.PartitionMap.Epoch, len(cfg.PartitionMap.Ranges))
	}
	pieces, err := Split(g, k)
	if err != nil {
		return nil, err
	}
	maxN := cfg.MaxNodes
	if maxN < g.N() {
		maxN = g.N() // growth disabled
	}
	backends := make([]Backend, k)
	var wg sync.WaitGroup
	errs := make([]error, k)
	for s := range pieces {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			w, err := NewWorker(pieces[s], k, cfg, maxN)
			if err != nil {
				errs[s] = err
				return
			}
			backends[s] = w
		}(s)
	}
	wg.Wait()
	for s, err := range errs {
		if err != nil {
			for _, b := range backends {
				if b != nil {
					b.Close()
				}
			}
			return nil, fmt.Errorf("shard %d: %w", s, err)
		}
	}
	r, err := NewRouterBackends(backends, g.N(), maxN, cfg.MaxPending)
	if err != nil {
		for _, b := range backends {
			b.Close()
		}
		return nil, err
	}
	return r, nil
}

// NewRouterBackends assembles a Router over pre-built shard backends —
// the constructor the multi-process deployment uses, with one remote
// transport client per shard. curN is the current global node count
// (ids in [0, curN) are valid) and maxNodes the growth ceiling;
// maxPending bounds each shard's mutation backlog for the router's
// all-or-nothing admission check (0 uses refresh.Config's default).
func NewRouterBackends(backends []Backend, curN, maxNodes, maxPending int) (*Router, error) {
	pm, err := NewPartitionMap(len(backends))
	if err != nil {
		return nil, err
	}
	if maxNodes < curN {
		maxNodes = curN
	}
	r := &Router{
		k:          len(backends),
		maxPending: maxPending,
		curN:       curN,
		maxN:       maxNodes,
		backends:   backends,
	}
	r.pm.Store(pm)
	return r, nil
}

// AdoptPartitionMap installs a recovered or negotiated partition map as
// the router's routing truth without touching the backends (they carry
// their own — persisted — copies). Used at multi-process boot, after
// the handshake agreed on the cluster's epoch.
func (r *Router) AdoptPartitionMap(pm *PartitionMap) error {
	if pm == nil {
		return nil
	}
	if pm.K != r.k {
		return fmt.Errorf("shard: partition map K=%d does not match %d backends", pm.K, r.k)
	}
	if err := pm.Validate(); err != nil {
		return err
	}
	r.pm.Store(pm)
	return nil
}

// PartitionMap returns the active routing map.
func (r *Router) PartitionMap() *PartitionMap { return r.pm.Load() }

// PartitionEpoch returns the active map's epoch.
func (r *Router) PartitionEpoch() uint64 { return r.pm.Load().Epoch }

// NumShards returns K.
func (r *Router) NumShards() int { return r.k }

// Ready always reports true: the router requires every shard's first
// generation at construction.
func (r *Router) Ready() bool { return true }

// Views returns one View per shard, each loaded atomically from its
// backend. Use one call's result for a whole request: per shard the
// view is one immutable generation, and the vector of generations is
// the response's consistency token. A degraded remote shard's view
// carries its last mirrored snapshot with View.Err set.
func (r *Router) Views() ([]View, error) {
	views := make([]View, len(r.backends))
	for s, b := range r.backends {
		views[s] = b.View()
	}
	return views, nil
}

// ViewFor returns the owning shard's view for a global node id, with
// the node's local id in that view. ok is false when the id is negative
// or not materialized in the shard's published generation (never seen,
// or growth still pending) — the view is still returned for shard and
// generation context when the id maps to a valid shard.
func (r *Router) ViewFor(global int32) (View, int32, bool, error) {
	if global < 0 {
		return View{}, 0, false, nil
	}
	view := r.backends[r.pm.Load().ShardOf(global)].View()
	local, ok := view.Local(global)
	return view, local, ok, nil
}

// NodeBound is the exclusive upper bound on valid global node ids,
// including accepted-but-pending growth.
func (r *Router) NodeBound() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.curN
}

// genVector snapshots every shard's current generation; degraded
// shards carry their transport error.
func (r *Router) genVector() GenVector {
	views, _ := r.Views()
	return VectorOf(views)
}

// Enqueue validates a batch of global edge mutations, translates each
// edge to the owning shards' local id spaces (materializing new ghost
// mappings as needed) and queues the per-shard operations. The batch
// is atomic across shards: one invalid edge — or one full or
// unreachable shard — rejects the whole batch with nothing queued and
// no mapping state touched anywhere (best-effort over the wire: a
// remote shard failing mid-fan-out reports an error, and because edge
// operations are idempotent the client may retry the whole batch). The
// returned vector holds each shard's generation at enqueue time,
// queued counts the accepted global operations, and touched lists the
// shards that received work (the ones a waiting client needs to
// flush).
func (r *Router) Enqueue(ctx context.Context, add, remove [][2]int32) (vec GenVector, queued int, touched []int, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return r.genVector(), 0, nil, refresh.ErrClosed
	}
	// Shared with refresh.Worker.Enqueue so router and workers accept
	// exactly the same batches — a batch that passes here cannot fail
	// per-shard validation later.
	batchN, err := refresh.ValidateBatch(add, remove, r.curN, r.maxN)
	if err != nil {
		return r.genVector(), 0, nil, err
	}

	// Target shards of an edge: the owners of both endpoints under the
	// active map — and, during a migration's transfer window, under the
	// pending map too, so mutations touching the migrating range land
	// on donor AND receiver (the double-apply that makes the slice
	// transfer race-free).
	pm := r.pm.Load()
	var pend *PartitionMap
	if r.mig != nil {
		pend = r.mig.pending
	}
	targets := func(e [2]int32, buf []int) []int {
		ts := buf[:0]
		push := func(s int) {
			for _, t := range ts {
				if t == s {
					return
				}
			}
			ts = append(ts, s)
		}
		push(pm.ShardOf(e[0]))
		push(pm.ShardOf(e[1]))
		if pend != nil {
			push(pend.ShardOf(e[0]))
			push(pend.ShardOf(e[1]))
		}
		return ts
	}
	var tbuf [4]int

	// Resolve removals first — pure lookups, no mapping growth — and
	// count per-shard add operations, so the backlog admission check
	// below runs before any state is touched.
	type shardOps struct{ add, remove [][2]int32 }
	ops := make([]shardOps, len(r.backends))
	counts := make([]int, len(r.backends))
	for _, e := range remove {
		for _, s := range targets(e, tbuf[:]) {
			lu, ok1 := r.backends[s].Lookup(e[0])
			lv, ok2 := r.backends[s].Lookup(e[1])
			if ok1 && ok2 {
				ops[s].remove = append(ops[s].remove, [2]int32{lu, lv})
				counts[s]++
			} // else: endpoint never materialized here, removal is a no-op
		}
	}
	for _, e := range add {
		for _, s := range targets(e, tbuf[:]) {
			counts[s]++
		}
	}

	// Admission check before queuing or materializing anything:
	// mutation intake serializes on r.mu and rebuilds only shrink
	// backlogs, so a batch that passes here cannot fail admission — the
	// whole batch lands on every owning shard or on none (and no ghost
	// mapping outlives a rejected batch), so a 503 really does mean
	// "nothing happened, retry the batch". A shard whose backend is
	// already known unreachable fails the batch up front for the same
	// reason.
	maxPending := r.maxPending
	if maxPending <= 0 {
		maxPending = refresh.DefaultMaxPending
	}
	for s, n := range counts {
		if n == 0 {
			continue
		}
		st := r.backends[s].Status()
		if st.Err != "" {
			return r.genVector(), 0, nil, fmt.Errorf("shard %d: %w: %s", s, ErrUnavailable, st.Err)
		}
		if st.Status.Pending+n > maxPending {
			return r.genVector(), 0, nil, fmt.Errorf("shard %d: %w", s, refresh.ErrBacklogFull)
		}
	}

	// The batch is admitted: only now may it enter the transfer-window
	// bookkeeping — a rejected batch's removals must not make slice
	// chunks skip edges that still exist. Only edges touching the
	// migrating range (an endpoint whose owner differs between the
	// active and pending maps) are recorded: they are all
	// shipChunk/reconcileStale ever consult, and recording every edge
	// would grow the window maps without bound under sustained
	// unrelated write traffic during a long migration.
	if r.mig != nil {
		inWindow := func(e [2]int32) bool {
			return pm.ShardOf(e[0]) != pend.ShardOf(e[0]) ||
				pm.ShardOf(e[1]) != pend.ShardOf(e[1])
		}
		for _, e := range remove {
			if !inWindow(e) {
				continue
			}
			r.mig.removed[normEdge(e)] = struct{}{}
			delete(r.mig.added, normEdge(e))
		}
		for _, e := range add {
			if !inWindow(e) {
				continue
			}
			r.mig.added[normEdge(e)] = struct{}{}
			delete(r.mig.removed, normEdge(e))
		}
	}

	for _, e := range add {
		// Every target shard records the edge; the non-owned endpoint
		// materializes as a ghost. Shards merely ghosting both endpoints
		// are not updated — their halos are refreshed only by their own
		// rebuilds and by RefreshHalos, which is an accepted approximation
		// (ghost neighborhoods steer OCA quality, never ownership).
		for _, s := range targets(e, tbuf[:]) {
			lu, lv := r.backends[s].EnsureLocal(e[0]), r.backends[s].EnsureLocal(e[1])
			ops[s].add = append(ops[s].add, [2]int32{lu, lv})
		}
	}
	for s := range ops {
		if len(ops[s].add)+len(ops[s].remove) == 0 {
			continue
		}
		if err := r.backends[s].Apply(ctx, ops[s].add, ops[s].remove); err != nil {
			return r.genVector(), 0, nil, fmt.Errorf("shard %d: %w", s, err)
		}
		touched = append(touched, s)
	}
	r.curN = batchN
	return r.genVector(), len(add) + len(remove), touched, nil
}

// ShardOf returns the shard owning a (non-negative) global node id
// under the active partition map.
func (r *Router) ShardOf(global int32) int { return r.pm.Load().ShardOf(global) }

// normEdge normalizes an edge to u < v order so the migration's removal
// record has one key per undirected edge.
func normEdge(e [2]int32) [2]int32 {
	if e[0] > e[1] {
		return [2]int32{e[1], e[0]}
	}
	return e
}

// Flush blocks until the listed shards (every shard when nil) have
// reflected their previously enqueued mutations, then returns the full
// generation vector. Waiting clients pass the touched set from their
// Enqueue so an unrelated shard's deep backlog doesn't stall them.
func (r *Router) Flush(ctx context.Context, shards []int) (GenVector, error) {
	if shards == nil {
		shards = make([]int, len(r.backends))
		for s := range shards {
			shards[s] = s
		}
	}
	var wg sync.WaitGroup
	errs := make([]error, len(shards))
	for i, s := range shards {
		wg.Add(1)
		go func(i int, b Backend) {
			defer wg.Done()
			_, errs[i] = b.Flush(ctx)
		}(i, r.backends[s])
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return r.genVector(), fmt.Errorf("shard %d: %w", shards[i], err)
		}
	}
	return r.genVector(), nil
}

// Statuses returns every shard's point-in-time worker status with its
// active c. It never blocks on rebuilds.
func (r *Router) Statuses() []WorkerStatus {
	out := make([]WorkerStatus, len(r.backends))
	for s, b := range r.backends {
		out[s] = b.Status()
	}
	return out
}

// ReplicaStats reports each shard's replica-set state, with a nil
// entry for shards whose backend is not a replica set. It never blocks
// on rebuilds or the network.
func (r *Router) ReplicaStats() []*ReplicaSetStats {
	out := make([]*ReplicaSetStats, len(r.backends))
	for s, b := range r.backends {
		if rs, ok := b.(interface{ ReplicaStats() ReplicaSetStats }); ok {
			st := rs.ReplicaStats()
			out[s] = &st
		}
	}
	return out
}

// ResilienceStats reports each shard backend's breaker/retry/deadline
// counters, with a nil entry for backends without a transport to break
// (in-process workers). Replica sets aggregate their members. It never
// blocks and triggers no I/O.
func (r *Router) ResilienceStats() []*resilience.Stats {
	out := make([]*resilience.Stats, len(r.backends))
	for s, b := range r.backends {
		if rst, ok := b.(interface{ ResilienceStats() resilience.Stats }); ok {
			st := rst.ResilienceStats()
			out[s] = &st
		}
	}
	return out
}

// Close stops every shard's backend: in-process refresh workers stop
// rebuilding (reads keep serving the last published generations),
// remote clients stop their mirror pollers (the remote processes keep
// running). Mutations fail afterwards. Safe to call multiple times,
// including on a partially constructed router.
func (r *Router) Close() {
	r.mu.Lock()
	r.closed = true
	r.mu.Unlock()
	for _, b := range r.backends {
		if b != nil {
			b.Close()
		}
	}
}
