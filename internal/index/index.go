// Package index provides an inverted node→community membership index
// over a cover.Cover. The index is the serving-side answer to the
// paper's titular query — "which communities does this node belong
// to?" — in O(memberships-of-node) per lookup instead of a linear scan
// over all communities.
//
// The index is stored CSR-style in two flat slices (offsets + community
// ids), is built in two passes over the cover, and is immutable after
// Build, making it safe for any number of concurrent readers.
package index

import (
	"repro/internal/cover"
)

// Membership is an immutable inverted index from node id to the sorted
// list of community indices containing it. Safe for concurrent readers.
type Membership struct {
	offsets []int64 // len n+1; memberships of node v live in comms[offsets[v]:offsets[v+1]]
	comms   []int32 // community indices, ascending per node
	k       int     // number of communities indexed
}

// Build constructs the index for a cover over a graph with n nodes.
// Members outside [0, n) are ignored, matching cover.MembershipIndex.
// The cover must not be mutated while the index is in use.
func Build(cv *cover.Cover, n int) *Membership {
	ix := &Membership{offsets: make([]int64, n+1), k: cv.Len()}
	for _, c := range cv.Communities {
		for _, v := range c {
			if v >= 0 && int(v) < n {
				ix.offsets[v+1]++
			}
		}
	}
	for v := 0; v < n; v++ {
		ix.offsets[v+1] += ix.offsets[v]
	}
	ix.comms = make([]int32, ix.offsets[n])
	fill := make([]int64, n)
	copy(fill, ix.offsets[:n])
	// Communities are visited in ascending index order, so each node's
	// membership list comes out sorted.
	for ci, c := range cv.Communities {
		for _, v := range c {
			if v >= 0 && int(v) < n {
				ix.comms[fill[v]] = int32(ci)
				fill[v]++
			}
		}
	}
	return ix
}

// N returns the number of nodes the index was built for.
func (ix *Membership) N() int { return len(ix.offsets) - 1 }

// NumCommunities returns the number of communities in the indexed cover.
func (ix *Membership) NumCommunities() int { return ix.k }

// Memberships returns the total number of (node, community) pairs.
func (ix *Membership) Memberships() int64 { return ix.offsets[len(ix.offsets)-1] }

// Communities returns the ascending community indices containing v as a
// view into the index; callers must not modify it. Nodes outside [0, N)
// and uncovered nodes yield an empty slice.
func (ix *Membership) Communities(v int32) []int32 {
	if v < 0 || int(v) >= ix.N() {
		return nil
	}
	return ix.comms[ix.offsets[v]:ix.offsets[v+1]]
}

// Degree returns the number of communities containing v.
func (ix *Membership) Degree(v int32) int { return len(ix.Communities(v)) }

// Covered reports whether v belongs to at least one community.
func (ix *Membership) Covered(v int32) bool { return ix.Degree(v) > 0 }

// CoverageCounts tallies membership over the nodes for which keep
// returns true (every node when keep is nil): how many belong to at
// least one community, how many to more than one, and the total number
// of memberships. The shard router aggregates global coverage from
// per-shard indexes with it, keeping only each shard's owned (non-ghost)
// nodes so boundary nodes are counted exactly once.
func (ix *Membership) CoverageCounts(keep func(int32) bool) (covered, overlapped int, memberships int64) {
	for v := int32(0); int(v) < ix.N(); v++ {
		if keep != nil && !keep(v) {
			continue
		}
		d := ix.offsets[v+1] - ix.offsets[v]
		memberships += d
		if d > 0 {
			covered++
		}
		if d > 1 {
			overlapped++
		}
	}
	return covered, overlapped, memberships
}

// Common returns the ascending community indices containing every one
// of the given nodes — the k-way generalization of Shared behind the
// batch endpoint's "which groups do all these people share?" option.
// An empty intersection (including no ids, or any out-of-range or
// uncovered id) is nil. The result is freshly allocated and costs
// O(Σ Degree(id)).
func (ix *Membership) Common(ids []int32) []int32 {
	if len(ids) == 0 {
		return nil
	}
	acc := append([]int32(nil), ix.Communities(ids[0])...)
	for _, v := range ids[1:] {
		if len(acc) == 0 {
			break
		}
		next := ix.Communities(v)
		out := acc[:0]
		i, j := 0, 0
		for i < len(acc) && j < len(next) {
			switch {
			case acc[i] < next[j]:
				i++
			case acc[i] > next[j]:
				j++
			default:
				out = append(out, acc[i])
				i++
				j++
			}
		}
		acc = out
	}
	if len(acc) == 0 {
		return nil
	}
	return acc
}

// Shared returns the ascending community indices containing both u and
// v — the overlap question behind the paper's social-network use case
// ("which groups do these two people share?"). The result is freshly
// allocated and costs O(Degree(u) + Degree(v)).
func (ix *Membership) Shared(u, v int32) []int32 {
	return ix.Common([]int32{u, v})
}
