package lfr

import "testing"

// TestFig6WorkloadFeasible pins the paper's hardest Fig. 6 configuration:
// max.deg=150 with communities of [50, 100] forces hub internal degrees
// to be clamped and the packing to be tight.
func TestFig6WorkloadFeasible(t *testing.T) {
	if testing.Short() {
		t.Skip("10k-node generation")
	}
	b, err := Generate(Params{
		N: 10000, AvgDeg: 50, MaxDeg: 150, Mu: 0.2,
		MinCom: 50, MaxCom: 100, Seed: 99,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := MeasureMixing(b.Graph, b.Memberships); got > 0.35 {
		t.Fatalf("realized mixing %.3f too far above requested 0.2 (clamped hubs allowed, not this much)", got)
	}
}
