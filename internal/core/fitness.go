// Package core implements OCA, the paper's Overlapping Community Search
// algorithm: local maxima of the directed-Laplacian fitness L over the
// subset lattice, found by greedy local search from random seeds, with
// the ρ-merge and orphan-assignment post-processing steps of Section IV.
package core

import "math"

// Phi is the squared length of the sum vector of a set S in the virtual
// vector representation (Section II): for |S| = s members spanning
// m = Ein(S) internal edges,
//
//	ϕ(S) = ‖Σ_{i∈S} v_i‖² = s + 2·c·m
//
// since each vector is unit length and every internal edge contributes
// an inner product of c (non-edges contribute 0). The vectors themselves
// are never materialized.
func Phi(s int, m int64, c float64) float64 {
	return float64(s) + 2*c*float64(m)
}

// L is the paper's fitness: the directed Laplacian of ϕ on the oriented
// subset lattice Γ↑, evaluated at a set with s = |S| members and
// m = Ein(S) internal edges (Section III):
//
//	L(S) = s − √(s(s−1)) + 2·c·m·(1 − (s−2)/√(s(s−1)))
//
// The boundary cases follow from the lattice definition
// L(S) = ϕ(S) − Σ_{x∈S} ϕ(S\{x})/√(indeg(S)·indeg(S\{x})) with
// indeg(T) = |T|: L(∅) = 0 and L({v}) = ϕ({v}) = 1 (the empty-set term
// vanishes because ϕ(∅) = 0).
func L(s int, m int64, c float64) float64 {
	switch {
	case s <= 0:
		return 0
	case s == 1:
		return 1
	}
	sf := float64(s)
	r := math.Sqrt(sf * (sf - 1))
	return sf - r + 2*c*float64(m)*(1-(sf-2)/r)
}

// gainAdd returns L(s+1, m+d) − L(s, m): the fitness change from adding a
// node with d neighbors inside S. localSearch inlines this against its
// running L value (one evaluation per candidate move instead of two);
// this closed form stays as the reference the tests check against.
func gainAdd(s int, m int64, d int32, c float64) float64 {
	return L(s+1, m+int64(d), c) - L(s, m, c)
}

// gainRemove returns L(s−1, m−d) − L(s, m): the fitness change from
// removing a member with d neighbors inside S.
func gainRemove(s int, m int64, d int32, c float64) float64 {
	return L(s-1, m-int64(d), c) - L(s, m, c)
}
