package graph

import (
	"fmt"
	"sort"
)

// Builder accumulates undirected edges and produces an immutable Graph.
// Self loops and duplicate edges are silently dropped at Build time, so
// generators may add edges freely. A Builder must be created with
// NewBuilder and is not safe for concurrent use.
type Builder struct {
	n     int
	edges []edge
}

type edge struct{ u, v int32 }

// NewBuilder returns a Builder for a graph on n nodes (ids 0..n-1).
func NewBuilder(n int) *Builder {
	return &Builder{n: n}
}

// NewBuilderHint is NewBuilder with a capacity hint for the expected
// number of edges, avoiding append growth on large generations.
func NewBuilderHint(n int, edgeHint int64) *Builder {
	return &Builder{n: n, edges: make([]edge, 0, edgeHint)}
}

// N returns the number of nodes the Builder was created with.
func (b *Builder) N() int { return b.n }

// AddEdge records the undirected edge {u, v}. Ordering of the endpoints
// is irrelevant. It panics if an endpoint is out of range — generator
// bugs should fail loudly, not corrupt a dataset.
func (b *Builder) AddEdge(u, v int32) {
	if u < 0 || v < 0 || int(u) >= b.n || int(v) >= b.n {
		panic(fmt.Sprintf("graph: AddEdge(%d, %d) out of range [0, %d)", u, v, b.n))
	}
	if u > v {
		u, v = v, u
	}
	b.edges = append(b.edges, edge{u, v})
}

// PendingEdges returns the number of edges recorded so far, before
// deduplication.
func (b *Builder) PendingEdges() int { return len(b.edges) }

// HasEdgePending reports whether {u,v} has already been recorded. It is a
// linear scan and intended only for small builders in tests.
func (b *Builder) HasEdgePending(u, v int32) bool {
	if u > v {
		u, v = v, u
	}
	for _, e := range b.edges {
		if e.u == u && e.v == v {
			return true
		}
	}
	return false
}

// Build sorts, deduplicates and symmetrizes the recorded edges and
// returns the immutable CSR graph. The Builder may be reused afterwards;
// its recorded edges are preserved.
func (b *Builder) Build() *Graph {
	es := make([]edge, len(b.edges))
	copy(es, b.edges)
	sort.Slice(es, func(i, j int) bool {
		if es[i].u != es[j].u {
			return es[i].u < es[j].u
		}
		return es[i].v < es[j].v
	})
	// Drop self loops and duplicates.
	kept := es[:0]
	var prev edge = edge{-1, -1}
	for _, e := range es {
		if e.u == e.v || e == prev {
			continue
		}
		kept = append(kept, e)
		prev = e
	}

	offsets := make([]int64, b.n+1)
	for _, e := range kept {
		offsets[e.u+1]++
		offsets[e.v+1]++
	}
	for i := 1; i <= b.n; i++ {
		offsets[i] += offsets[i-1]
	}
	adj := make([]int32, offsets[b.n])
	cursor := make([]int64, b.n)
	copy(cursor, offsets[:b.n])
	for _, e := range kept {
		adj[cursor[e.u]] = e.v
		cursor[e.u]++
		adj[cursor[e.v]] = e.u
		cursor[e.v]++
	}
	// Each list was filled in increasing order of the opposite endpoint
	// for the u side, but the v side interleaves, so sort per node.
	g := &Graph{offsets: offsets, adj: adj}
	for v := int32(0); v < int32(b.n); v++ {
		nb := g.Neighbors(v)
		if !sort.SliceIsSorted(nb, func(i, j int) bool { return nb[i] < nb[j] }) {
			sort.Slice(nb, func(i, j int) bool { return nb[i] < nb[j] })
		}
	}
	return g
}

// FromEdges is a convenience constructor building a Graph from an edge
// slice of (u, v) pairs.
func FromEdges(n int, pairs [][2]int32) *Graph {
	b := NewBuilderHint(n, int64(len(pairs)))
	for _, p := range pairs {
		b.AddEdge(p[0], p[1])
	}
	return b.Build()
}
