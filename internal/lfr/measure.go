package lfr

import "repro/internal/graph"

// MeasureMixing returns the realized mixing parameter of a generated
// instance: the fraction, over all edge endpoints, of edges that leave
// every community of the endpoint. For a perfect realization this equals
// the requested µ.
func MeasureMixing(g *graph.Graph, memberships [][]int32) float64 {
	var external, total int64
	n := g.N()
	for v := int32(0); v < int32(n); v++ {
		ms := memberships[v]
		for _, w := range g.Neighbors(v) {
			total++
			if !share(ms, memberships[w]) {
				external++
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(external) / float64(total)
}

func share(a, b []int32) bool {
	for _, x := range a {
		for _, y := range b {
			if x == y {
				return true
			}
		}
	}
	return false
}
